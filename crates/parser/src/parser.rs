//! Recursive-descent parser for G-CORE.
//!
//! The grammar follows Section 4 of the paper and the clause grammars of
//! Appendix A; the concrete (ASCII-art) syntax follows the guided tour of
//! Section 3. Multi-character arrows (`-[`, `]->`, `-/`, `/->`, `<-[`, …)
//! are assembled from primitive tokens here, which keeps the lexer
//! context-free.
//!
//! Ambiguity between parenthesized expressions and graph-pattern
//! predicates in WHERE (`(n:Person)` vs `(a + b)`) is resolved by
//! backtracking: the parser attempts a pattern parse and falls back to an
//! expression when the parenthesized text has no pattern features.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::lex;
use crate::token::{Keyword as Kw, Span, Tok, Token};

/// Parse a single statement: a query or a `GRAPH VIEW` definition.
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a query (errors on `GRAPH VIEW`).
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse a sequence of `;`-separated statements. A trailing `;` is
/// allowed. (The paper shows single queries; scripts are a convenience.)
pub fn parse_script(src: &str) -> Result<Vec<Statement>, ParseError> {
    // Split on top-level semicolons is fragile (strings); instead reuse
    // the parser: statements are self-delimiting, so just loop.
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
    /// Inside a `GROUP` expression list, `:Label` belongs to the
    /// enclosing construct element, not to the expression — suppress the
    /// label-test postfix there.
    no_label_postfix: bool,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> PResult<Self> {
        Ok(Parser {
            src,
            toks: lex(src)?,
            pos: 0,
            no_label_postfix: false,
        })
    }

    // -- token plumbing --------------------------------------------------

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        self.eat(&Tok::Kw(kw))
    }

    fn check_kw(&self, kw: Kw) -> bool {
        matches!(self.peek(), Tok::Kw(k) if *k == kw)
    }

    fn expect(&mut self, tok: Tok) -> PResult<()> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err_expected(&tok.to_string()))
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> PResult<()> {
        self.expect(Tok::Kw(kw))
    }

    fn expect_eof(&mut self) -> PResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err_expected("end of query"))
        }
    }

    fn err_expected(&self, what: &str) -> ParseError {
        ParseError::new(
            ParseErrorKind::Expected {
                what: what.to_owned(),
                found: self.peek().to_string(),
            },
            self.span(),
            self.src,
        )
    }

    fn err_msg(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(ParseErrorKind::Message(msg.into()), self.span(), self.src)
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek() {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err_expected("identifier")),
        }
    }

    /// An identifier together with its source span.
    fn spanned_ident(&mut self) -> PResult<Ident> {
        let span = self.span();
        Ok(Ident::new(self.ident()?, span))
    }

    // -- statements & queries --------------------------------------------

    fn statement(&mut self) -> PResult<Statement> {
        if self.check_kw(Kw::Graph) && matches!(self.peek_at(1), Tok::Kw(Kw::View)) {
            self.bump(); // GRAPH
            self.bump(); // VIEW
            let name = self.spanned_ident()?;
            self.expect_kw(Kw::As)?;
            self.expect(Tok::LParen)?;
            let query = self.query()?;
            self.expect(Tok::RParen)?;
            return Ok(Statement::GraphView { name, query });
        }
        Ok(Statement::Query(self.query()?))
    }

    fn query(&mut self) -> PResult<Query> {
        let mut heads = Vec::new();
        loop {
            if self.check_kw(Kw::Path) {
                heads.push(HeadClause::Path(self.path_clause()?));
            } else if self.check_kw(Kw::Graph) && !matches!(self.peek_at(1), Tok::Kw(Kw::View)) {
                heads.push(HeadClause::Graph(self.graph_clause()?));
            } else {
                break;
            }
        }
        let body = if self.check_kw(Kw::Select) {
            QueryBody::Select(self.select_query()?)
        } else {
            QueryBody::Graph(self.full_graph_query()?)
        };
        Ok(Query { heads, body })
    }

    /// `PATH name = pattern (, pattern)* [WHERE cond] [COST expr]`
    fn path_clause(&mut self) -> PResult<PathClause> {
        self.expect_kw(Kw::Path)?;
        let name = self.spanned_ident()?;
        self.expect(Tok::Eq)?;
        let mut patterns = vec![self.pattern()?];
        while self.peek() == &Tok::Comma {
            // A comma continues the PATH clause only if a pattern follows;
            // otherwise it belongs to an enclosing list.
            if !matches!(self.peek_at(1), Tok::LParen) {
                break;
            }
            self.bump();
            patterns.push(self.pattern()?);
        }
        let where_clause = if self.eat_kw(Kw::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let cost = if self.eat_kw(Kw::Cost) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(PathClause {
            name,
            patterns,
            where_clause,
            cost,
        })
    }

    /// `GRAPH name AS (fullGraphQuery)` — query-local view.
    fn graph_clause(&mut self) -> PResult<GraphClause> {
        self.expect_kw(Kw::Graph)?;
        let name = self.spanned_ident()?;
        self.expect_kw(Kw::As)?;
        self.expect(Tok::LParen)?;
        let query = self.query()?;
        self.expect(Tok::RParen)?;
        Ok(GraphClause {
            name,
            query: Box::new(query),
        })
    }

    fn full_graph_query(&mut self) -> PResult<FullGraphQuery> {
        let mut left = self.graph_query_operand()?;
        loop {
            let op = match self.peek() {
                Tok::Kw(Kw::Union) => GraphSetOp::Union,
                Tok::Kw(Kw::Intersect) => GraphSetOp::Intersect,
                Tok::Kw(Kw::Minus) => GraphSetOp::Minus,
                _ => break,
            };
            self.bump();
            let right = self.graph_query_operand()?;
            left = FullGraphQuery::SetOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    /// One operand of a graph set operation: a basic query, a
    /// parenthesized full query, or a bare graph name (the guided tour's
    /// `… UNION social_graph`).
    fn graph_query_operand(&mut self) -> PResult<FullGraphQuery> {
        match self.peek() {
            Tok::Kw(Kw::Construct) => Ok(FullGraphQuery::Basic(self.basic_graph_query()?)),
            Tok::LParen => {
                self.bump();
                let q = self.full_graph_query()?;
                self.expect(Tok::RParen)?;
                Ok(q)
            }
            Tok::Ident(_) => {
                let name = self.ident()?;
                // Desugar a bare graph name to CONSTRUCT name (unit match).
                Ok(FullGraphQuery::Basic(BasicGraphQuery {
                    construct: ConstructClause {
                        items: vec![ConstructItem::GraphName(name)],
                    },
                    source: QuerySource::Match(MatchClause {
                        patterns: Vec::new(),
                        where_clause: None,
                        where_span: AstSpan::default(),
                        optionals: Vec::new(),
                    }),
                }))
            }
            _ => Err(self.err_expected("CONSTRUCT, '(' or a graph name")),
        }
    }

    fn basic_graph_query(&mut self) -> PResult<BasicGraphQuery> {
        let construct = self.construct_clause()?;
        let source = if self.check_kw(Kw::Match) {
            QuerySource::Match(self.match_clause()?)
        } else if self.eat_kw(Kw::From) {
            QuerySource::From(self.spanned_ident()?)
        } else {
            // CONSTRUCT with no binding source: single empty binding.
            QuerySource::Match(MatchClause {
                patterns: Vec::new(),
                where_clause: None,
                where_span: AstSpan::default(),
                optionals: Vec::new(),
            })
        };
        Ok(BasicGraphQuery { construct, source })
    }

    // -- MATCH -------------------------------------------------------------

    fn match_clause(&mut self) -> PResult<MatchClause> {
        self.expect_kw(Kw::Match)?;
        let patterns = self.located_patterns()?;
        let (where_clause, where_span) = self.maybe_where()?;
        let mut optionals = Vec::new();
        while self.eat_kw(Kw::Optional) {
            let patterns = self.located_patterns()?;
            let (where_clause, where_span) = self.maybe_where()?;
            optionals.push(OptionalBlock {
                patterns,
                where_clause,
                where_span,
            });
        }
        Ok(MatchClause {
            patterns,
            where_clause,
            where_span,
            optionals,
        })
    }

    /// `[WHERE cond]`, also yielding the source span of the condition.
    fn maybe_where(&mut self) -> PResult<(Option<Expr>, AstSpan)> {
        if self.eat_kw(Kw::Where) {
            let lo = self.span();
            let e = self.expr()?;
            Ok((Some(e), AstSpan(lo.merge(self.prev_span()))))
        } else {
            Ok((None, AstSpan::default()))
        }
    }

    fn located_patterns(&mut self) -> PResult<Vec<LocatedPattern>> {
        let mut out = vec![self.located_pattern()?];
        while self.eat(&Tok::Comma) {
            out.push(self.located_pattern()?);
        }
        // "The MATCH..ON..WHERE clause matches one or more (comma
        // separated) graph patterns on a named graph" (§3): a trailing
        // ON distributes to every pattern that lacks its own, so
        //   MATCH (a), (b) ON g   ≡   MATCH (a) ON g, (b) ON g.
        if let Some(last_on) = out.last().and_then(|lp| lp.on.clone()) {
            for lp in &mut out {
                if lp.on.is_none() {
                    lp.on = Some(last_on.clone());
                }
            }
        }
        Ok(out)
    }

    fn located_pattern(&mut self) -> PResult<LocatedPattern> {
        let pattern = self.pattern()?;
        let on = if self.eat_kw(Kw::On) {
            match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let q = self.query()?;
                    self.expect(Tok::RParen)?;
                    Some(Location::Subquery(Box::new(q)))
                }
                _ => Some(Location::Named(self.spanned_ident()?)),
            }
        } else {
            None
        };
        Ok(LocatedPattern { pattern, on })
    }

    fn pattern(&mut self) -> PResult<Pattern> {
        let lo = self.span();
        let start = self.node_pattern()?;
        let mut steps = Vec::new();
        while let Some(connection) = self.maybe_connection()? {
            let node = self.node_pattern()?;
            steps.push(PatternStep { connection, node });
        }
        Ok(Pattern {
            start,
            steps,
            span: AstSpan(lo.merge(self.prev_span())),
        })
    }

    /// `(x:Label|Label {k = e, …})`
    fn node_pattern(&mut self) -> PResult<NodePattern> {
        self.expect(Tok::LParen)?;
        let var = match self.peek() {
            Tok::Ident(_) => Some(self.spanned_ident()?),
            _ => None,
        };
        let labels = self.label_disjunctions()?;
        let props = if self.eat(&Tok::LBrace) {
            let mut entries = vec![self.prop_entry()?];
            while self.eat(&Tok::Comma) {
                entries.push(self.prop_entry()?);
            }
            self.expect(Tok::RBrace)?;
            entries
        } else {
            Vec::new()
        };
        self.expect(Tok::RParen)?;
        Ok(NodePattern { var, labels, props })
    }

    /// `:A|B :C` — a conjunction of disjunctive label groups.
    fn label_disjunctions(&mut self) -> PResult<Vec<LabelDisjunction>> {
        let mut groups = Vec::new();
        while self.peek() == &Tok::Colon {
            let lo = self.span();
            self.bump();
            let mut labels = vec![self.ident()?];
            while self.eat(&Tok::Pipe) {
                labels.push(self.ident()?);
            }
            groups.push(LabelDisjunction(
                labels,
                AstSpan(lo.merge(self.prev_span())),
            ));
        }
        Ok(groups)
    }

    /// `key = expr` inside a MATCH property map.
    fn prop_entry(&mut self) -> PResult<PropEntry> {
        let key = self.spanned_ident()?;
        self.expect(Tok::Eq)?;
        let value = self.expr()?;
        Ok(PropEntry { key, value })
    }

    /// Try to parse the connector that starts a new pattern step. Returns
    /// `None` when the pattern chain ends here.
    fn maybe_connection(&mut self) -> PResult<Option<Connection>> {
        let lo = self.span();
        match (self.peek(), self.peek_at(1)) {
            // -[ …  |  -/ …  |  -( (anonymous edge)  |  -> (
            (Tok::Minus, Tok::LBracket) => {
                self.bump();
                self.bump();
                let conn = self.edge_pattern_tail(false)?;
                Ok(Some(conn))
            }
            (Tok::Minus, Tok::Slash) => {
                self.bump();
                self.bump();
                let conn = self.path_pattern_tail(false, lo)?;
                Ok(Some(conn))
            }
            (Tok::Minus, Tok::Gt) if matches!(self.peek_at(2), Tok::LParen) => {
                // bare `->` anonymous edge
                self.bump();
                self.bump();
                Ok(Some(Connection::Edge(EdgePattern {
                    direction: Direction::Out,
                    var: None,
                    labels: Vec::new(),
                    props: Vec::new(),
                })))
            }
            (Tok::Minus, Tok::LParen) => {
                // bare `-` anonymous undirected edge (footnote 3's (b)-(c))
                self.bump();
                Ok(Some(Connection::Edge(EdgePattern {
                    direction: Direction::Undirected,
                    var: None,
                    labels: Vec::new(),
                    props: Vec::new(),
                })))
            }
            (Tok::Lt, Tok::Minus) => {
                match self.peek_at(2) {
                    Tok::LBracket => {
                        self.bump();
                        self.bump();
                        self.bump();
                        let conn = self.edge_pattern_tail(true)?;
                        Ok(Some(conn))
                    }
                    Tok::Slash => {
                        self.bump();
                        self.bump();
                        self.bump();
                        let conn = self.path_pattern_tail(true, lo)?;
                        Ok(Some(conn))
                    }
                    Tok::LParen => {
                        // bare `<-` anonymous edge
                        self.bump();
                        self.bump();
                        Ok(Some(Connection::Edge(EdgePattern {
                            direction: Direction::In,
                            var: None,
                            labels: Vec::new(),
                            props: Vec::new(),
                        })))
                    }
                    _ => Ok(None),
                }
            }
            _ => Ok(None),
        }
    }

    /// After `-[` / `<-[`: parse the interior, `]`, and the closing arrow.
    fn edge_pattern_tail(&mut self, incoming: bool) -> PResult<Connection> {
        let var = match self.peek() {
            Tok::Ident(_) => Some(self.spanned_ident()?),
            _ => None,
        };
        let labels = self.label_disjunctions()?;
        let props = if self.eat(&Tok::LBrace) {
            let mut entries = vec![self.prop_entry()?];
            while self.eat(&Tok::Comma) {
                entries.push(self.prop_entry()?);
            }
            self.expect(Tok::RBrace)?;
            entries
        } else {
            Vec::new()
        };
        self.expect(Tok::RBracket)?;
        self.expect(Tok::Minus)?;
        let direction = if incoming {
            // `<-[…]-`: no trailing `>` allowed.
            Direction::In
        } else if self.eat(&Tok::Gt) {
            Direction::Out
        } else {
            Direction::Undirected
        };
        Ok(Connection::Edge(EdgePattern {
            direction,
            var,
            labels,
            props,
        }))
    }

    /// After `-/` / `<-/`: parse the interior, `/`, and the closing arrow.
    ///
    /// Interior: `[n SHORTEST | SHORTEST | ALL] [@]var? [:labels]
    /// [<regex>] [COST var]`.
    fn path_pattern_tail(&mut self, incoming: bool, lo: Span) -> PResult<Connection> {
        let mode = if self.eat_kw(Kw::All) {
            PathMode::All
        } else if self.eat_kw(Kw::Shortest) {
            PathMode::Shortest(1)
        } else if let Tok::Int(k) = *self.peek() {
            if matches!(self.peek_at(1), Tok::Kw(Kw::Shortest)) {
                self.bump();
                self.bump();
                if k < 1 {
                    return Err(self.err_msg("k SHORTEST requires k >= 1"));
                }
                PathMode::Shortest(k as u32)
            } else {
                return Err(self.err_expected("SHORTEST after path multiplicity"));
            }
        } else {
            PathMode::Shortest(1)
        };
        let stored = self.eat(&Tok::At);
        let var = match self.peek() {
            Tok::Ident(_) => Some(self.spanned_ident()?),
            _ => None,
        };
        let labels = self.label_disjunctions()?;
        let regex = if self.eat(&Tok::Lt) {
            let r = self.regex()?;
            self.expect(Tok::Gt)?;
            Some(r)
        } else {
            None
        };
        let cost_var = if self.eat_kw(Kw::Cost) {
            Some(self.spanned_ident()?)
        } else {
            None
        };
        self.expect(Tok::Slash)?;
        self.expect(Tok::Minus)?;
        let direction = if incoming {
            Direction::In
        } else if self.eat(&Tok::Gt) {
            Direction::Out
        } else {
            Direction::Undirected
        };
        if regex.is_none() && !stored && labels.is_empty() {
            return Err(self.err_msg(
                "path pattern needs a <regex>, a stored-path variable (@p) or a label test",
            ));
        }
        Ok(Connection::Path(PathPattern {
            direction,
            mode,
            stored,
            var,
            labels,
            regex,
            cost_var,
            span: AstSpan(lo.merge(self.prev_span())),
        }))
    }

    // -- regular path expressions ------------------------------------------

    /// Alternation level: `concat (+ concat | '|' concat)*`.
    fn regex(&mut self) -> PResult<Regex> {
        let first = self.regex_concat()?;
        let mut alts = vec![first];
        while matches!(self.peek(), Tok::Plus | Tok::Pipe) {
            self.bump();
            alts.push(self.regex_concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("one element")
        } else {
            Regex::Alt(alts)
        })
    }

    fn regex_concat(&mut self) -> PResult<Regex> {
        let mut parts = vec![self.regex_postfix()?];
        while matches!(
            self.peek(),
            Tok::Colon | Tok::Bang | Tok::Underscore | Tok::Tilde | Tok::LParen
        ) {
            parts.push(self.regex_postfix()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Regex::Concat(parts)
        })
    }

    fn regex_postfix(&mut self) -> PResult<Regex> {
        let mut atom = self.regex_atom()?;
        while self.eat(&Tok::Star) {
            atom = Regex::Star(Box::new(atom));
        }
        Ok(atom)
    }

    fn regex_atom(&mut self) -> PResult<Regex> {
        match self.bump() {
            Tok::Colon => {
                let label = self.ident()?;
                if self.eat(&Tok::Minus) {
                    Ok(Regex::LabelInv(label))
                } else {
                    Ok(Regex::Label(label))
                }
            }
            Tok::Bang => Ok(Regex::NodeTest(self.ident()?)),
            Tok::Underscore => Ok(Regex::Wildcard),
            Tok::Tilde => Ok(Regex::View(self.ident()?)),
            Tok::LParen => {
                let r = self.regex()?;
                self.expect(Tok::RParen)?;
                Ok(r)
            }
            _ => {
                // bump consumed; report at previous position
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_expected("a path expression atom (:label, !label, _, ~view or '(')"))
            }
        }
    }

    // -- CONSTRUCT -----------------------------------------------------------

    fn construct_clause(&mut self) -> PResult<ConstructClause> {
        self.expect_kw(Kw::Construct)?;
        let mut items = vec![self.construct_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.construct_item()?);
        }
        Ok(ConstructClause { items })
    }

    fn construct_item(&mut self) -> PResult<ConstructItem> {
        if let Tok::Ident(_) = self.peek() {
            let name = self.ident()?;
            return Ok(ConstructItem::GraphName(name));
        }
        Ok(ConstructItem::Pattern(self.construct_pattern()?))
    }

    fn construct_pattern(&mut self) -> PResult<ConstructPattern> {
        let lo = self.span();
        let start = self.construct_node()?;
        let mut steps = Vec::new();
        while let Some(connection) = self.maybe_construct_connection()? {
            let node = self.construct_node()?;
            steps.push(ConstructStep { connection, node });
        }
        let span = AstSpan(lo.merge(self.prev_span()));
        let mut when = None;
        let mut sets = Vec::new();
        let mut removes = Vec::new();
        loop {
            if self.eat_kw(Kw::When) {
                if when.is_some() {
                    return Err(self.err_msg("duplicate WHEN on one construct pattern"));
                }
                when = Some(self.expr()?);
            } else if self.eat_kw(Kw::Set) {
                sets.push(self.set_item()?);
            } else if self.eat_kw(Kw::Remove) {
                removes.push(self.remove_item()?);
            } else {
                break;
            }
        }
        Ok(ConstructPattern {
            start,
            steps,
            span,
            when,
            sets,
            removes,
        })
    }

    fn construct_node(&mut self) -> PResult<ConstructNode> {
        self.expect(Tok::LParen)?;
        let mut node = ConstructNode::default();
        if self.eat(&Tok::Eq) {
            node.copy_of = Some(self.spanned_ident()?);
        } else if let Tok::Ident(_) = self.peek() {
            node.var = Some(self.spanned_ident()?);
        }
        if self.eat_kw(Kw::Group) {
            node.group = Some(self.group_exprs()?);
        }
        node.labels = self.construct_labels()?;
        node.assigns = self.maybe_assign_map()?;
        self.expect(Tok::RParen)?;
        Ok(node)
    }

    /// `GROUP e1, e2, …` — expressions up to `:`/`{`/`)`/`]`.
    fn group_exprs(&mut self) -> PResult<Vec<Expr>> {
        let saved = self.no_label_postfix;
        self.no_label_postfix = true;
        let result = (|| {
            let mut out = vec![self.expr()?];
            while self.eat(&Tok::Comma) {
                out.push(self.expr()?);
            }
            Ok(out)
        })();
        self.no_label_postfix = saved;
        result
    }

    /// Construct-side labels are conjunctive `:A:B` (no disjunction —
    /// created elements get exactly the listed labels).
    fn construct_labels(&mut self) -> PResult<Vec<String>> {
        let mut labels = Vec::new();
        while self.eat(&Tok::Colon) {
            labels.push(self.ident()?);
        }
        Ok(labels)
    }

    fn maybe_assign_map(&mut self) -> PResult<Vec<PropAssign>> {
        if !self.eat(&Tok::LBrace) {
            return Ok(Vec::new());
        }
        let mut assigns = vec![self.prop_assign()?];
        while self.eat(&Tok::Comma) {
            assigns.push(self.prop_assign()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(assigns)
    }

    fn prop_assign(&mut self) -> PResult<PropAssign> {
        let key = self.spanned_ident()?;
        self.expect(Tok::Assign)?;
        let value = self.expr()?;
        Ok(PropAssign { key, value })
    }

    fn maybe_construct_connection(&mut self) -> PResult<Option<ConstructConnection>> {
        match (self.peek(), self.peek_at(1)) {
            (Tok::Minus, Tok::LBracket) => {
                self.bump();
                self.bump();
                Ok(Some(self.construct_edge_tail(false)?))
            }
            (Tok::Minus, Tok::Slash) => {
                self.bump();
                self.bump();
                Ok(Some(self.construct_path_tail(false)?))
            }
            (Tok::Lt, Tok::Minus) => match self.peek_at(2) {
                Tok::LBracket => {
                    self.bump();
                    self.bump();
                    self.bump();
                    Ok(Some(self.construct_edge_tail(true)?))
                }
                Tok::Slash => {
                    self.bump();
                    self.bump();
                    self.bump();
                    Ok(Some(self.construct_path_tail(true)?))
                }
                _ => Ok(None),
            },
            _ => Ok(None),
        }
    }

    fn construct_edge_tail(&mut self, incoming: bool) -> PResult<ConstructConnection> {
        let mut edge = ConstructEdge {
            direction: Direction::Out,
            var: None,
            copy_of: None,
            group: None,
            labels: Vec::new(),
            assigns: Vec::new(),
        };
        if self.eat(&Tok::Eq) {
            edge.copy_of = Some(self.spanned_ident()?);
        } else if let Tok::Ident(_) = self.peek() {
            edge.var = Some(self.spanned_ident()?);
        }
        if self.eat_kw(Kw::Group) {
            edge.group = Some(self.group_exprs()?);
        }
        edge.labels = self.construct_labels()?;
        edge.assigns = self.maybe_assign_map()?;
        self.expect(Tok::RBracket)?;
        self.expect(Tok::Minus)?;
        edge.direction = if incoming {
            Direction::In
        } else if self.eat(&Tok::Gt) {
            Direction::Out
        } else {
            return Err(self.err_msg("constructed edges must be directed: use -[…]-> or <-[…]-"));
        };
        Ok(ConstructConnection::Edge(edge))
    }

    fn construct_path_tail(&mut self, incoming: bool) -> PResult<ConstructConnection> {
        let stored = self.eat(&Tok::At);
        let var = self.spanned_ident()?;
        let labels = self.construct_labels()?;
        let assigns = self.maybe_assign_map()?;
        self.expect(Tok::Slash)?;
        self.expect(Tok::Minus)?;
        let direction = if incoming {
            Direction::In
        } else if self.eat(&Tok::Gt) {
            Direction::Out
        } else {
            return Err(self.err_msg("constructed paths must be directed: use -/…/-> or <-/…/-"));
        };
        Ok(ConstructConnection::Path(ConstructPath {
            direction,
            stored,
            var,
            labels,
            assigns,
        }))
    }

    fn set_item(&mut self) -> PResult<SetItem> {
        let var = self.spanned_ident()?;
        if self.eat(&Tok::Dot) {
            let key = self.ident()?;
            self.expect(Tok::Assign)?;
            let value = self.expr()?;
            Ok(SetItem::Prop { var, key, value })
        } else if self.eat(&Tok::Colon) {
            let label = self.ident()?;
            Ok(SetItem::Label { var, label })
        } else if self.eat(&Tok::Eq) {
            let from = self.spanned_ident()?;
            Ok(SetItem::Copy { var, from })
        } else {
            Err(self.err_expected("'.' , ':' or '=' after SET variable"))
        }
    }

    fn remove_item(&mut self) -> PResult<RemoveItem> {
        let var = self.spanned_ident()?;
        if self.eat(&Tok::Dot) {
            let key = self.ident()?;
            Ok(RemoveItem::Prop { var, key })
        } else if self.eat(&Tok::Colon) {
            let label = self.ident()?;
            Ok(RemoveItem::Label { var, label })
        } else {
            Err(self.err_expected("'.' or ':' after REMOVE variable"))
        }
    }

    // -- SELECT (§5) ---------------------------------------------------------

    fn select_query(&mut self) -> PResult<SelectQuery> {
        self.expect_kw(Kw::Select)?;
        let distinct = self.eat_kw(Kw::Distinct);
        let mut items = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.select_item()?);
        }
        let match_clause = self.match_clause()?;
        let group_by = if self.check_kw(Kw::Group) && matches!(self.peek_at(1), Tok::Kw(Kw::By)) {
            self.bump();
            self.bump();
            let mut exprs = vec![self.expr()?];
            while self.eat(&Tok::Comma) {
                exprs.push(self.expr()?);
            }
            exprs
        } else {
            Vec::new()
        };
        let order_by = if self.check_kw(Kw::Order) {
            self.bump();
            self.expect_kw(Kw::By)?;
            let mut keys = vec![self.order_item()?];
            while self.eat(&Tok::Comma) {
                keys.push(self.order_item()?);
            }
            keys
        } else {
            Vec::new()
        };
        let limit = if self.eat_kw(Kw::Limit) {
            Some(self.nonneg_int()?)
        } else {
            None
        };
        let offset = if self.eat_kw(Kw::Offset) {
            Some(self.nonneg_int()?)
        } else {
            None
        };
        Ok(SelectQuery {
            distinct,
            items,
            match_clause,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn select_item(&mut self) -> PResult<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw(Kw::As) {
            // Aliases live in their own namespace, so keywords are fine
            // here: `… AS cost` is a natural column name.
            Some(self.ident_or_keyword()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    /// An identifier, also accepting keywords (for positions where the
    /// grammar is unambiguous, e.g. SELECT aliases).
    fn ident_or_keyword(&mut self) -> PResult<Ident> {
        let span = self.span();
        match self.peek() {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(Ident::new(s, span))
            }
            Tok::Kw(k) => {
                let s = k.as_str().to_ascii_lowercase();
                self.bump();
                Ok(Ident::new(s, span))
            }
            _ => Err(self.err_expected("identifier")),
        }
    }

    fn order_item(&mut self) -> PResult<OrderItem> {
        let expr = self.expr()?;
        let ascending = if self.eat_kw(Kw::Desc) {
            false
        } else {
            self.eat_kw(Kw::Asc);
            true
        };
        Ok(OrderItem { expr, ascending })
    }

    fn nonneg_int(&mut self) -> PResult<u64> {
        match *self.peek() {
            Tok::Int(i) if i >= 0 => {
                self.bump();
                Ok(i as u64)
            }
            _ => Err(self.err_expected("a non-negative integer")),
        }
    }

    // -- expressions -----------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Kw::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary(BinaryOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Kw::And) {
            let right = self.not_expr()?;
            left = Expr::Binary(BinaryOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> PResult<Expr> {
        if self.eat_kw(Kw::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> PResult<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Tok::Eq => BinaryOp::Eq,
            Tok::Neq => BinaryOp::Neq,
            Tok::Lt => BinaryOp::Lt,
            Tok::Le => BinaryOp::Le,
            Tok::Gt => BinaryOp::Gt,
            Tok::Ge => BinaryOp::Ge,
            Tok::Kw(Kw::In) => BinaryOp::In,
            Tok::Kw(Kw::Subset) => BinaryOp::Subset,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinaryOp::Add,
                Tok::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinaryOp::Mul,
                Tok::Slash => BinaryOp::Div,
                Tok::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut base = self.primary()?;
        loop {
            if self.eat(&Tok::Dot) {
                let key = self.ident()?;
                base = Expr::Prop(Box::new(base), key);
            } else if self.peek() == &Tok::LBracket {
                self.bump();
                let index = self.expr()?;
                self.expect(Tok::RBracket)?;
                base = Expr::Index(Box::new(base), Box::new(index));
            } else if self.peek() == &Tok::Colon && !self.no_label_postfix {
                // label test — only sensible on a variable base
                self.bump();
                let mut labels = vec![self.ident()?];
                while self.eat(&Tok::Pipe) {
                    labels.push(self.ident()?);
                }
                base = Expr::LabelTest(Box::new(base), labels);
            } else {
                break;
            }
        }
        Ok(base)
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Int(i))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::Float(x))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::Kw(Kw::Null) => {
                self.bump();
                Ok(Expr::Null)
            }
            Tok::Kw(Kw::Date) => {
                self.bump();
                match self.bump() {
                    Tok::Str(s) => Ok(Expr::DateLit(s)),
                    _ => Err(self.err_expected("a date string after DATE")),
                }
            }
            Tok::Kw(Kw::Case) => self.case_expr(),
            Tok::Kw(Kw::Exists) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let q = self.query()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Exists(Box::new(q)))
            }
            Tok::Ident(name) => {
                if matches!(self.peek_at(1), Tok::LParen) {
                    self.call_expr(&name)
                } else {
                    let span = self.span();
                    self.bump();
                    Ok(Expr::Var(Ident::new(name, span)))
                }
            }
            Tok::LParen => self.paren_or_pattern(),
            _ => Err(self.err_expected("an expression")),
        }
    }

    fn case_expr(&mut self) -> PResult<Expr> {
        self.expect_kw(Kw::Case)?;
        let operand = if self.check_kw(Kw::When) {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut whens = Vec::new();
        while self.eat_kw(Kw::When) {
            let cond = self.expr()?;
            self.expect_kw(Kw::Then)?;
            let result = self.expr()?;
            whens.push((cond, result));
        }
        if whens.is_empty() {
            return Err(self.err_expected("WHEN inside CASE"));
        }
        let else_ = if self.eat_kw(Kw::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Kw::End)?;
        Ok(Expr::Case {
            operand,
            whens,
            else_,
        })
    }

    /// `name(args)` — aggregate or built-in function.
    fn call_expr(&mut self, name: &str) -> PResult<Expr> {
        let lowered = name.to_ascii_lowercase();
        self.bump(); // name
        self.expect(Tok::LParen)?;
        if let Some(op) = AggOp::from_name(&lowered) {
            // COUNT(*), COUNT(x), SUM(DISTINCT x), …
            if op == AggOp::Count && self.eat(&Tok::Star) {
                self.expect(Tok::RParen)?;
                return Ok(Expr::Aggregate {
                    op,
                    distinct: false,
                    arg: None,
                });
            }
            let distinct = self.eat_kw(Kw::Distinct);
            let arg = self.expr()?;
            self.expect(Tok::RParen)?;
            return Ok(Expr::Aggregate {
                op,
                distinct,
                arg: Some(Box::new(arg)),
            });
        }
        let func = Func::from_name(&lowered)
            .ok_or_else(|| self.err_msg(format!("unknown function '{name}'")))?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            args.push(self.expr()?);
            while self.eat(&Tok::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect(Tok::RParen)?;
        Ok(Expr::Func(func, args))
    }

    /// Disambiguate `( … )` in expression position: a graph-pattern
    /// predicate, a label test, or a parenthesized expression.
    fn paren_or_pattern(&mut self) -> PResult<Expr> {
        let saved = self.pos;
        if let Ok(pattern) = self.pattern() {
            let is_chain = !pattern.steps.is_empty();
            let n = &pattern.start;
            let has_features = is_chain || !n.labels.is_empty() || !n.props.is_empty();
            if has_features {
                // `(n:Person)` alone is the paper's WHERE label test.
                if !is_chain && n.props.is_empty() && n.labels.len() == 1 && n.var.is_some() {
                    let var = n.var.clone().expect("checked");
                    let labels = n.labels[0].0.clone();
                    return Ok(Expr::LabelTest(Box::new(Expr::Var(var)), labels));
                }
                return Ok(Expr::PatternPredicate(Box::new(pattern)));
            }
            // `(x)` with nothing else: prefer the expression reading,
            // unless a longer pattern continues (handled above).
        }
        self.pos = saved;
        self.expect(Tok::LParen)?;
        let e = self.expr()?;
        self.expect(Tok::RParen)?;
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Query {
        match parse_query(src) {
            Ok(q) => q,
            Err(e) => panic!("parse failed:\n{e}\nquery: {src}"),
        }
    }

    fn body_graph(query: &Query) -> &FullGraphQuery {
        match &query.body {
            QueryBody::Graph(g) => g,
            QueryBody::Select(_) => panic!("expected graph body"),
        }
    }

    fn basic(query: &Query) -> &BasicGraphQuery {
        match body_graph(query) {
            FullGraphQuery::Basic(b) => b,
            _ => panic!("expected basic query"),
        }
    }

    #[test]
    fn simplest_query_lines_1_to_4() {
        let query = q("CONSTRUCT (n) MATCH (n:Person) ON social_graph WHERE n.employer = 'Acme'");
        let b = basic(&query);
        assert_eq!(b.construct.items.len(), 1);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        assert_eq!(m.patterns.len(), 1);
        assert_eq!(
            m.patterns[0].on,
            Some(Location::Named("social_graph".into()))
        );
        assert!(m.where_clause.is_some());
    }

    #[test]
    fn multi_graph_join_lines_5_to_9() {
        let query = q("CONSTRUCT (c) <-[:worksAt]-(n) \
                       MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
                       WHERE c.name = n.employer \
                       UNION social_graph");
        match body_graph(&query) {
            FullGraphQuery::SetOp { op, right, .. } => {
                assert_eq!(*op, GraphSetOp::Union);
                // RHS desugars to CONSTRUCT social_graph
                let FullGraphQuery::Basic(b) = right.as_ref() else {
                    panic!()
                };
                assert_eq!(
                    b.construct.items[0],
                    ConstructItem::GraphName("social_graph".into())
                );
            }
            _ => panic!("expected UNION"),
        }
    }

    #[test]
    fn in_and_property_unrolling_lines_10_to_19() {
        q("CONSTRUCT (c) <-[:worksAt]-(n) \
           MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
           WHERE c.name IN n.employer UNION social_graph");
        let query = q("CONSTRUCT (c) <-[:worksAt]-(n) \
                       MATCH (c:Company) ON company_graph, \
                             (n:Person {employer=e}) ON social_graph \
                       WHERE c.name = e UNION social_graph");
        let FullGraphQuery::SetOp { left, .. } = body_graph(&query) else {
            panic!()
        };
        let FullGraphQuery::Basic(b) = left.as_ref() else {
            panic!()
        };
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        let node = &m.patterns[1].pattern.start;
        assert_eq!(node.props.len(), 1);
        assert_eq!(node.props[0].key, "employer");
        assert_eq!(node.props[0].value, Expr::Var("e".into()));
    }

    #[test]
    fn graph_aggregation_lines_20_to_22() {
        let query = q("CONSTRUCT social_graph, \
                       (x GROUP e :Company {name:=e}) <-[y:worksAt]-(n) \
                       MATCH (n:Person {employer=e})");
        let b = basic(&query);
        assert_eq!(b.construct.items.len(), 2);
        let ConstructItem::Pattern(p) = &b.construct.items[1] else {
            panic!()
        };
        assert_eq!(p.start.var, Some("x".into()));
        assert_eq!(p.start.group, Some(vec![Expr::Var("e".into())]));
        assert_eq!(p.start.labels, vec!["Company".to_string()]);
        assert_eq!(p.start.assigns.len(), 1);
        let ConstructConnection::Edge(edge) = &p.steps[0].connection else {
            panic!()
        };
        assert_eq!(edge.direction, Direction::In);
        assert_eq!(edge.var, Some("y".into()));
    }

    #[test]
    fn stored_paths_lines_23_to_27() {
        let query = q("CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) \
                       MATCH (n) -/3 SHORTEST p<:knows*> COST c/->(m) \
                       WHERE (n:Person) AND (m:Person) \
                       AND n.firstName = 'John' AND n.lastName = 'Doe' \
                       AND (n) -[:isLocatedIn]->() <-[:isLocatedIn]-(m)");
        let b = basic(&query);
        let ConstructItem::Pattern(cp) = &b.construct.items[0] else {
            panic!()
        };
        let ConstructConnection::Path(path) = &cp.steps[0].connection else {
            panic!()
        };
        assert!(path.stored);
        assert_eq!(path.var, "p");
        assert_eq!(path.labels, vec!["localPeople".to_string()]);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        let Connection::Path(pp) = &m.patterns[0].pattern.steps[0].connection else {
            panic!()
        };
        assert_eq!(pp.mode, PathMode::Shortest(3));
        assert_eq!(pp.var, Some("p".into()));
        assert_eq!(pp.cost_var, Some("c".into()));
        assert_eq!(
            pp.regex,
            Some(Regex::Star(Box::new(Regex::Label("knows".into()))))
        );
        // WHERE mixes label tests and a pattern predicate
        let w = m.where_clause.as_ref().unwrap();
        let shown = format!("{w:?}");
        assert!(shown.contains("LabelTest"));
        assert!(shown.contains("PatternPredicate"));
    }

    #[test]
    fn reachability_lines_28_to_31() {
        let query = q("CONSTRUCT (m) \
                       MATCH (n:Person) -/<:knows*>/->(m:Person) \
                       WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
                       AND (n) -[:isLocatedIn]->() <-[:isLocatedIn]-(m)");
        let b = basic(&query);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        let Connection::Path(pp) = &m.patterns[0].pattern.steps[0].connection else {
            panic!()
        };
        assert_eq!(pp.mode, PathMode::Shortest(1));
        assert!(pp.var.is_none());
    }

    #[test]
    fn all_paths_lines_32_to_35() {
        let query = q("CONSTRUCT (n)-/p/->(m) \
                       MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) \
                       WHERE n.firstName = 'John'");
        let b = basic(&query);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        let Connection::Path(pp) = &m.patterns[0].pattern.steps[0].connection else {
            panic!()
        };
        assert_eq!(pp.mode, PathMode::All);
        // construct side: projected (non-stored) path
        let ConstructItem::Pattern(cp) = &b.construct.items[0] else {
            panic!()
        };
        let ConstructConnection::Path(path) = &cp.steps[0].connection else {
            panic!()
        };
        assert!(!path.stored);
    }

    #[test]
    fn explicit_exists_lines_36_to_38() {
        let query = q("CONSTRUCT (x) MATCH (x) \
                       WHERE EXISTS ( CONSTRUCT () MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )");
        let b = basic(&query);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        assert!(matches!(m.where_clause, Some(Expr::Exists(_))));
    }

    #[test]
    fn graph_view_with_optional_lines_39_to_47() {
        let stmt = parse_statement(
            "GRAPH VIEW social_graph1 AS ( \
               CONSTRUCT social_graph, \
                 (n)-[e]->(m) SET e.nr_messages := COUNT(*) \
               MATCH (n)-[e:knows]->(m) \
               WHERE (n:Person) AND (m:Person) \
               OPTIONAL (n)<-[c1]-(msg1:Post|Comment), \
                        (msg1) -[:reply_of]-(msg2), \
                        (msg2:Post|Comment)-[c2]->(m) \
               WHERE (c1:has_creator) AND (c2:has_creator) )",
        )
        .unwrap();
        let Statement::GraphView { name, query } = stmt else {
            panic!()
        };
        assert_eq!(name, "social_graph1");
        let b = basic(&query);
        let ConstructItem::Pattern(cp) = &b.construct.items[1] else {
            panic!()
        };
        assert_eq!(cp.sets.len(), 1);
        assert!(matches!(
            &cp.sets[0],
            SetItem::Prop { var, key, value: Expr::Aggregate { op: AggOp::Count, arg: None, .. } }
                if var == "e" && key == "nr_messages"
        ));
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        assert_eq!(m.optionals.len(), 1);
        assert_eq!(m.optionals[0].patterns.len(), 3);
        assert!(m.optionals[0].where_clause.is_some());
        // disjunctive labels
        let msg1 = &m.optionals[0].patterns[0].pattern.steps[0].node;
        assert_eq!(
            msg1.labels[0].0,
            vec!["Post".to_string(), "Comment".to_string()]
        );
        // undirected reply_of edge
        let Connection::Edge(e) = &m.optionals[0].patterns[1].pattern.steps[0].connection else {
            panic!()
        };
        assert_eq!(e.direction, Direction::Undirected);
    }

    #[test]
    fn multiple_optionals_lines_48_to_56() {
        let query = q("CONSTRUCT (n) MATCH (n:Person) \
                       OPTIONAL (n) -[:worksAt]->(c) \
                       OPTIONAL (n) -[:livesIn]->(a)");
        let b = basic(&query);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        assert_eq!(m.optionals.len(), 2);
    }

    #[test]
    fn weighted_paths_lines_57_to_66() {
        let stmt = parse_statement(
            "GRAPH VIEW social_graph2 AS ( \
               PATH wKnows = (x)-[e:knows]->(y) \
                 WHERE NOT 'Acme' IN y.employer \
                 COST 1 / (1 + e.nr_messages) \
               CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) \
               MATCH (n:Person)-/p<~wKnows*>/->(m:Person) \
               ON social_graph1 \
               WHERE (m) -[:hasInterest]->(:Tag {name='Wagner'}) \
               AND (n) -[:isLocatedIn]->() <-[:isLocatedIn]-(m) \
               AND n.firstName = 'John' AND n.lastName = 'Doe')",
        )
        .unwrap();
        let Statement::GraphView { query, .. } = stmt else {
            panic!()
        };
        assert_eq!(query.heads.len(), 1);
        let HeadClause::Path(pc) = &query.heads[0] else {
            panic!()
        };
        assert_eq!(pc.name, "wKnows");
        assert!(pc.where_clause.is_some());
        assert!(pc.cost.is_some());
        let b = basic(&query);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        let Connection::Path(pp) = &m.patterns[0].pattern.steps[0].connection else {
            panic!()
        };
        assert_eq!(
            pp.regex,
            Some(Regex::Star(Box::new(Regex::View("wKnows".into()))))
        );
    }

    #[test]
    fn stored_path_analytics_lines_67_to_71() {
        let query = q("CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) \
                       WHEN e.score > 0 \
                       MATCH (n:Person)-/@p:toWagner/->(), (m:Person) \
                       ON social_graph2 \
                       WHERE n = nodes(p)[1]");
        let b = basic(&query);
        let ConstructItem::Pattern(cp) = &b.construct.items[0] else {
            panic!()
        };
        assert!(cp.when.is_some());
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        // stored-path match with label
        let Connection::Path(pp) = &m.patterns[0].pattern.steps[0].connection else {
            panic!()
        };
        assert!(pp.stored);
        assert_eq!(pp.labels[0].0, vec!["toWagner".to_string()]);
        // second pattern carries the ON for the whole list? No — per
        // pattern. Here ON binds to (m:Person).
        assert_eq!(
            m.patterns[1].on,
            Some(Location::Named("social_graph2".into()))
        );
        // WHERE n = nodes(p)[1]
        let Some(Expr::Binary(BinaryOp::Eq, _, rhs)) = &m.where_clause else {
            panic!()
        };
        assert!(matches!(rhs.as_ref(), Expr::Index(_, _)));
    }

    #[test]
    fn select_projection_lines_72_to_75() {
        let query = q("SELECT m.lastName + ', ' + m.firstName AS friendName \
                       MATCH (n:Person) -/<:knows*>/->(m:Person) \
                       WHERE n.firstName = 'John' AND n.lastName = 'Doe'");
        let QueryBody::Select(s) = &query.body else {
            panic!()
        };
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.items[0].alias, Some("friendName".into()));
    }

    #[test]
    fn from_table_lines_76_to_80() {
        let query = q("CONSTRUCT \
                         (cust GROUP custName :Customer {name:= custName}), \
                         (prod GROUP prodCode :Product {code:= prodCode}), \
                         (cust) -[:bought]->(prod) \
                       FROM orders");
        let b = basic(&query);
        assert_eq!(b.construct.items.len(), 3);
        assert_eq!(b.source, QuerySource::From("orders".into()));
    }

    #[test]
    fn table_as_graph_lines_81_to_85() {
        let query = q("CONSTRUCT \
                         (cust GROUP o.custName :Customer {name:=o.custName}), \
                         (prod GROUP o.prodCode :Product {code:=o.prodCode}), \
                         (cust) -[:bought]->(prod) \
                       MATCH (o) ON orders");
        let b = basic(&query);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        assert_eq!(m.patterns[0].on, Some(Location::Named("orders".into())));
        let ConstructItem::Pattern(cp) = &b.construct.items[0] else {
            panic!()
        };
        // GROUP by a property expression
        assert_eq!(
            cp.start.group,
            Some(vec![Expr::Prop(
                Box::new(Expr::Var("o".into())),
                "custName".into()
            )])
        );
    }

    #[test]
    fn regex_grammar() {
        let query = q("CONSTRUCT (n) MATCH (n)-/<(:a:b- + :c)* !Person _>/->(m)");
        let b = basic(&query);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        let Connection::Path(pp) = &m.patterns[0].pattern.steps[0].connection else {
            panic!()
        };
        let Regex::Concat(parts) = pp.regex.as_ref().unwrap() else {
            panic!("expected concat, got {:?}", pp.regex)
        };
        assert_eq!(parts.len(), 3);
        assert!(matches!(&parts[0], Regex::Star(inner)
            if matches!(inner.as_ref(), Regex::Alt(alts) if alts.len() == 2)));
        assert_eq!(parts[1], Regex::NodeTest("Person".into()));
        assert_eq!(parts[2], Regex::Wildcard);
    }

    #[test]
    fn copy_syntax() {
        let query = q("CONSTRUCT (=n)-[=e]->(m) MATCH (n)-[e]->(m)");
        let b = basic(&query);
        let ConstructItem::Pattern(cp) = &b.construct.items[0] else {
            panic!()
        };
        assert_eq!(cp.start.copy_of, Some("n".into()));
        let ConstructConnection::Edge(edge) = &cp.steps[0].connection else {
            panic!()
        };
        assert_eq!(edge.copy_of, Some("e".into()));
    }

    #[test]
    fn set_and_remove_clauses() {
        let query = q(
            "CONSTRUCT (n) SET n:VIP SET n.rank := 1 REMOVE n.temp REMOVE n:Old \
                       MATCH (n)",
        );
        let b = basic(&query);
        let ConstructItem::Pattern(cp) = &b.construct.items[0] else {
            panic!()
        };
        assert_eq!(cp.sets.len(), 2);
        assert_eq!(cp.removes.len(), 2);
    }

    #[test]
    fn intersect_and_minus() {
        let query = q("CONSTRUCT (n) MATCH (n) INTERSECT g1 MINUS g2");
        // left-assoc: ((q ∩ g1) ∖ g2)
        let FullGraphQuery::SetOp { op, left, .. } = body_graph(&query) else {
            panic!()
        };
        assert_eq!(*op, GraphSetOp::Minus);
        assert!(matches!(
            left.as_ref(),
            FullGraphQuery::SetOp {
                op: GraphSetOp::Intersect,
                ..
            }
        ));
    }

    #[test]
    fn on_subquery() {
        let query = q("CONSTRUCT (n) MATCH (n) ON (CONSTRUCT (m) MATCH (m:Person))");
        let b = basic(&query);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        assert!(matches!(m.patterns[0].on, Some(Location::Subquery(_))));
    }

    #[test]
    fn case_expression() {
        let query = q("CONSTRUCT (n {b := CASE WHEN size(n.x) = 0 THEN 0 ELSE 1 END}) MATCH (n)");
        let b = basic(&query);
        let ConstructItem::Pattern(cp) = &b.construct.items[0] else {
            panic!()
        };
        assert!(matches!(cp.start.assigns[0].value, Expr::Case { .. }));
    }

    #[test]
    fn parenthesized_arithmetic_still_works() {
        let query = q("CONSTRUCT (n) MATCH (n) WHERE (1 + 2) * 3 = 9");
        let b = basic(&query);
        let QuerySource::Match(m) = &b.source else {
            panic!()
        };
        assert!(m.where_clause.is_some());
    }

    #[test]
    fn parse_errors_are_informative() {
        let err = parse_query("CONSTRUCT (n MATCH (n)").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("expected"), "got: {text}");
        assert!(parse_query("MATCH (n)").is_err()); // no CONSTRUCT
        assert!(parse_query("CONSTRUCT (n) MATCH (n)-[e]-(m) EXTRA").is_err());
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script(
            "GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n)) \
             CONSTRUCT (m) MATCH (m) ON v",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn negative_k_shortest_rejected() {
        assert!(parse_query("CONSTRUCT (n) MATCH (n)-/0 SHORTEST p<:a*>/->(m)").is_err());
    }

    #[test]
    fn undirected_construct_edge_rejected() {
        assert!(parse_query("CONSTRUCT (a)-[e]-(b) MATCH (a)-[e]-(b)").is_err());
    }
}
