//! Abstract syntax of G-CORE, mirroring the grammar of Section 4 and the
//! detailed clause grammars of Appendix A, plus the §5 tabular extensions.
//!
//! ```text
//! query          ::= headClause* (fullGraphQuery | selectQuery)
//! headClause     ::= PATH … | GRAPH … AS (…)
//! fullGraphQuery ::= basicGraphQuery (UNION|INTERSECT|MINUS fullGraphQuery)?
//! basicGraphQuery::= constructClause (matchClause | FROM table)
//! ```

use crate::token::Span;
use std::fmt;

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// A byte span attached to an AST node.
///
/// `AstSpan` is *transparent to equality*: two AST nodes compare equal
/// even when they were parsed from different positions. This keeps the
/// pretty-printer round-trip invariant (`parse(print(q)) == q`) intact
/// while still letting diagnostics point at the original source.
#[derive(Clone, Copy, Default)]
pub struct AstSpan(pub Span);

impl AstSpan {
    /// The underlying byte range.
    #[must_use]
    pub fn span(self) -> Span {
        self.0
    }

    /// Merge two spans into one covering both.
    #[must_use]
    pub fn merge(self, other: AstSpan) -> AstSpan {
        AstSpan(self.0.merge(other.0))
    }
}

impl PartialEq for AstSpan {
    fn eq(&self, _: &AstSpan) -> bool {
        true
    }
}

impl Eq for AstSpan {}

impl fmt::Debug for AstSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.0.start, self.0.end)
    }
}

impl From<Span> for AstSpan {
    fn from(s: Span) -> AstSpan {
        AstSpan(s)
    }
}

/// An identifier (variable, graph/view/table name, alias, property key)
/// together with its source position.
///
/// Equality ignores the span (see [`AstSpan`]), so tests can build
/// identifiers with `"n".into()` and still compare whole ASTs.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Ident {
    pub text: String,
    pub span: AstSpan,
}

impl Ident {
    /// An identifier with a known source position.
    #[must_use]
    pub fn new(text: impl Into<String>, span: Span) -> Ident {
        Ident {
            text: text.into(),
            span: AstSpan(span),
        }
    }

    /// The identifier text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

impl std::ops::Deref for Ident {
    type Target = str;
    fn deref(&self) -> &str {
        &self.text
    }
}

impl std::borrow::Borrow<str> for Ident {
    fn borrow(&self) -> &str {
        &self.text
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{:?}", self.text, self.span)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Ident {
        Ident {
            text: s.to_owned(),
            span: AstSpan::default(),
        }
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Ident {
        Ident {
            text: s,
            span: AstSpan::default(),
        }
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

impl PartialEq<String> for Ident {
    fn eq(&self, other: &String) -> bool {
        self.text == *other
    }
}

impl PartialEq<Ident> for String {
    fn eq(&self, other: &Ident) -> bool {
        *self == other.text
    }
}

impl From<Ident> for String {
    fn from(i: Ident) -> String {
        i.text
    }
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

/// A complete G-CORE query: head clauses (PATH / query-local GRAPH views)
/// followed by the body.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    pub heads: Vec<HeadClause>,
    pub body: QueryBody,
}

/// Graph-valued body (the core language) or the §5 tabular `SELECT`.
#[derive(Clone, PartialEq, Debug)]
pub enum QueryBody {
    Graph(FullGraphQuery),
    Select(SelectQuery),
}

/// A statement accepted by the engine: a query, or a persistent
/// `GRAPH VIEW name AS (query)` definition (§A.6).
#[derive(Clone, PartialEq, Debug)]
pub enum Statement {
    Query(Query),
    GraphView { name: Ident, query: Query },
}

/// PATH or query-local GRAPH clause in a query head.
#[derive(Clone, PartialEq, Debug)]
pub enum HeadClause {
    Path(PathClause),
    Graph(GraphClause),
}

/// `PATH name = pattern [, pattern]* [WHERE cond] [COST expr]` — a path
/// view usable as `~name` inside regular path expressions (§A.4).
///
/// The first pattern's first and last node are the path segment's start
/// and end; additional patterns (after `;` in the formal grammar, comma
/// here) constrain the segment non-linearly.
#[derive(Clone, PartialEq, Debug)]
pub struct PathClause {
    pub name: Ident,
    pub patterns: Vec<Pattern>,
    pub where_clause: Option<Expr>,
    pub cost: Option<Expr>,
}

/// `GRAPH name AS (fullGraphQuery)` — a query-local view (SQL WITH).
#[derive(Clone, PartialEq, Debug)]
pub struct GraphClause {
    pub name: Ident,
    pub query: Box<Query>,
}

/// Basic graph queries combined with graph-level set operations.
#[derive(Clone, PartialEq, Debug)]
pub enum FullGraphQuery {
    Basic(BasicGraphQuery),
    SetOp {
        op: GraphSetOp,
        left: Box<FullGraphQuery>,
        right: Box<FullGraphQuery>,
    },
}

/// UNION / INTERSECT / MINUS on whole graphs (§A.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphSetOp {
    Union,
    Intersect,
    Minus,
}

impl fmt::Display for GraphSetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GraphSetOp::Union => "UNION",
            GraphSetOp::Intersect => "INTERSECT",
            GraphSetOp::Minus => "MINUS",
        })
    }
}

/// `CONSTRUCT … MATCH …` (or `CONSTRUCT … FROM table`, §5).
#[derive(Clone, PartialEq, Debug)]
pub struct BasicGraphQuery {
    pub construct: ConstructClause,
    pub source: QuerySource,
}

/// Where a basic query's bindings come from.
#[derive(Clone, PartialEq, Debug)]
pub enum QuerySource {
    Match(MatchClause),
    /// §5 "binding table inputs": one binding per table row, one value
    /// variable per column.
    From(Ident),
}

// ---------------------------------------------------------------------
// MATCH
// ---------------------------------------------------------------------

/// `MATCH patterns [WHERE cond] (OPTIONAL patterns [WHERE cond])*`.
#[derive(Clone, PartialEq, Debug)]
pub struct MatchClause {
    pub patterns: Vec<LocatedPattern>,
    pub where_clause: Option<Expr>,
    /// Source region of `where_clause` (for diagnostics on expressions
    /// that contain no spanned identifier of their own).
    pub where_span: AstSpan,
    pub optionals: Vec<OptionalBlock>,
}

/// One `OPTIONAL` block: all its comma-separated patterns must match
/// together; left-outer-joined onto the main bindings (§3, §A.2).
#[derive(Clone, PartialEq, Debug)]
pub struct OptionalBlock {
    pub patterns: Vec<LocatedPattern>,
    pub where_clause: Option<Expr>,
    /// Source region of `where_clause` (see [`MatchClause::where_span`]).
    pub where_span: AstSpan,
}

/// A pattern with an optional `ON location` (§A.2 "basic graph patterns
/// with location").
#[derive(Clone, PartialEq, Debug)]
pub struct LocatedPattern {
    pub pattern: Pattern,
    pub on: Option<Location>,
}

/// The location a pattern is evaluated on: a named graph / table, or a
/// full graph subquery.
#[derive(Clone, PartialEq, Debug)]
pub enum Location {
    Named(Ident),
    Subquery(Box<Query>),
}

/// A linear chain `(n)-[e]->(m)-/…/->(k)…`.
#[derive(Clone, PartialEq, Debug)]
pub struct Pattern {
    pub start: NodePattern,
    pub steps: Vec<PatternStep>,
    /// Source region of the whole chain.
    pub span: AstSpan,
}

impl Pattern {
    /// A single-node pattern.
    pub fn single(node: NodePattern) -> Self {
        Pattern {
            start: node,
            steps: Vec::new(),
            span: AstSpan::default(),
        }
    }

    /// All node patterns, in order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodePattern> {
        std::iter::once(&self.start).chain(self.steps.iter().map(|s| &s.node))
    }
}

/// One hop of a pattern chain: a connection plus its target node.
#[derive(Clone, PartialEq, Debug)]
pub struct PatternStep {
    pub connection: Connection,
    pub node: NodePattern,
}

/// An edge or path connection between two node patterns.
#[derive(Clone, PartialEq, Debug)]
pub enum Connection {
    Edge(EdgePattern),
    Path(PathPattern),
}

/// Direction of a connection relative to reading order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// `-[…]->`
    Out,
    /// `<-[…]-`
    In,
    /// `-[…]-` — either direction.
    Undirected,
}

/// A node pattern `(x:L1|L2 {k = e, …})`.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct NodePattern {
    pub var: Option<Ident>,
    pub labels: Vec<LabelDisjunction>,
    pub props: Vec<PropEntry>,
}

/// A disjunctive label test `:Post|Comment` — at least one must hold.
/// The second field is the source span of the test.
#[derive(Clone, PartialEq, Debug)]
pub struct LabelDisjunction(pub Vec<String>, pub AstSpan);

/// `{key = expr}` inside a MATCH element: if `expr` is a plain variable
/// it *binds* that variable to each value of the (multi-valued) property,
/// unrolling; otherwise it filters by set membership.
#[derive(Clone, PartialEq, Debug)]
pub struct PropEntry {
    pub key: Ident,
    pub value: Expr,
}

/// An edge pattern `-[e:knows {since = d}]->`.
#[derive(Clone, PartialEq, Debug)]
pub struct EdgePattern {
    pub direction: Direction,
    pub var: Option<Ident>,
    pub labels: Vec<LabelDisjunction>,
    pub props: Vec<PropEntry>,
}

/// How many paths a path pattern yields per endpoint pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathMode {
    /// Default: one (the canonical shortest) path.
    Shortest(u32),
    /// `ALL` — every conforming path, only legal for graph projection.
    All,
}

/// A path pattern `-/3 SHORTEST p <:knows*> COST c/->` or a stored-path
/// pattern `-/@p:toWagner/->`.
#[derive(Clone, PartialEq, Debug)]
pub struct PathPattern {
    pub direction: Direction,
    pub mode: PathMode,
    /// `@` prefix: bind existing *stored* paths instead of computing one.
    pub stored: bool,
    pub var: Option<Ident>,
    /// Label tests on the (stored) path object.
    pub labels: Vec<LabelDisjunction>,
    /// The regular expression between `<` and `>`; `None` for pure
    /// stored-path patterns.
    pub regex: Option<Regex>,
    /// `COST c` binds the path cost to a value variable.
    pub cost_var: Option<Ident>,
    /// Source region of the `-/…/->` connection.
    pub span: AstSpan,
}

/// Regular expressions over edge labels, inverse labels, node tests,
/// wildcards and path-view references (§A.1).
#[derive(Clone, PartialEq, Debug)]
pub enum Regex {
    /// `:knows` — an edge with this label, forward.
    Label(String),
    /// `:knows-` — an edge with this label, traversed backwards (ℓ⁻).
    LabelInv(String),
    /// `!Person` — a node with this label.
    NodeTest(String),
    /// `_` — any single edge.
    Wildcard,
    /// `~wKnows` — a path view defined by a PATH clause.
    View(String),
    /// Concatenation `r r`.
    Concat(Vec<Regex>),
    /// Alternation `r + r` (also written `r | r`).
    Alt(Vec<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
    /// One-or-more `r+` is desugared to `r r*` by the parser; retained
    /// here for pretty-printing fidelity.
    Plus(Box<Regex>),
    /// Zero-or-one `r?`.
    Opt(Box<Regex>),
}

// ---------------------------------------------------------------------
// CONSTRUCT
// ---------------------------------------------------------------------

/// `CONSTRUCT item, item, …`.
#[derive(Clone, PartialEq, Debug)]
pub struct ConstructClause {
    pub items: Vec<ConstructItem>,
}

/// One comma-separated CONSTRUCT item: a graph name (shorthand for
/// unioning that graph in) or a construct pattern.
// Construct patterns dominate in practice, so the size skew is the
// common case, not wasted space.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, PartialEq, Debug)]
pub enum ConstructItem {
    GraphName(String),
    Pattern(ConstructPattern),
}

/// A construct pattern chain with its optional sub-clauses.
#[derive(Clone, PartialEq, Debug)]
pub struct ConstructPattern {
    pub start: ConstructNode,
    pub steps: Vec<ConstructStep>,
    /// Source region of the pattern chain (not including WHEN/SET/REMOVE).
    pub span: AstSpan,
    /// `WHEN cond` — per-group filter (§A.3).
    pub when: Option<Expr>,
    /// Trailing `SET` assignments.
    pub sets: Vec<SetItem>,
    /// Trailing `REMOVE` assignments.
    pub removes: Vec<RemoveItem>,
}

/// One hop of a construct chain.
#[derive(Clone, PartialEq, Debug)]
pub struct ConstructStep {
    pub connection: ConstructConnection,
    pub node: ConstructNode,
}

/// Edge or path construct between two node constructs.
#[derive(Clone, PartialEq, Debug)]
pub enum ConstructConnection {
    Edge(ConstructEdge),
    Path(ConstructPath),
}

/// `(x GROUP e :Company {name := e})`.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct ConstructNode {
    pub var: Option<Ident>,
    /// `(=n)` — construct a fresh element copying n's labels/properties.
    pub copy_of: Option<Ident>,
    /// Explicit `GROUP` expressions extending the grouping set Γ.
    pub group: Option<Vec<Expr>>,
    pub labels: Vec<String>,
    /// `{k := expr}` property instantiations.
    pub assigns: Vec<PropAssign>,
}

/// `-[y:worksAt {w := e}]->` on the construct side.
#[derive(Clone, PartialEq, Debug)]
pub struct ConstructEdge {
    pub direction: Direction,
    pub var: Option<Ident>,
    pub copy_of: Option<Ident>,
    pub group: Option<Vec<Expr>>,
    pub labels: Vec<String>,
    pub assigns: Vec<PropAssign>,
}

/// `-/@p:localPeople {distance := c}/->` (stored) or `-/p/->` (projected).
#[derive(Clone, PartialEq, Debug)]
pub struct ConstructPath {
    pub direction: Direction,
    /// `@` — store the path object in the result graph; without it the
    /// path's nodes and edges are merely projected.
    pub stored: bool,
    pub var: Ident,
    pub labels: Vec<String>,
    pub assigns: Vec<PropAssign>,
}

/// `key := expr` inside a construct element.
#[derive(Clone, PartialEq, Debug)]
pub struct PropAssign {
    pub key: Ident,
    pub value: Expr,
}

/// Trailing `SET` items (§A.3 Set assignments).
#[derive(Clone, PartialEq, Debug)]
pub enum SetItem {
    /// `SET x.k := expr` — (+x.k = ξ).
    Prop {
        var: Ident,
        key: String,
        value: Expr,
    },
    /// `SET x:Label` — (+x : l).
    Label { var: Ident, label: String },
    /// `SET x = y` — copy all labels and properties of y onto x (+x = y).
    Copy { var: Ident, from: Ident },
}

/// Trailing `REMOVE` items (§A.3 Remove assignments).
#[derive(Clone, PartialEq, Debug)]
pub enum RemoveItem {
    /// `REMOVE x.k` — (−x.k).
    Prop { var: Ident, key: String },
    /// `REMOVE x:Label` — (−x : l).
    Label { var: Ident, label: String },
}

// ---------------------------------------------------------------------
// SELECT (§5 extension)
// ---------------------------------------------------------------------

/// `SELECT [DISTINCT] items MATCH … [GROUP BY …] [ORDER BY …] [LIMIT …]`.
#[derive(Clone, PartialEq, Debug)]
pub struct SelectQuery {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub match_clause: MatchClause,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// One projection item, optionally aliased.
#[derive(Clone, PartialEq, Debug)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<Ident>,
}

/// One ORDER BY key.
#[derive(Clone, PartialEq, Debug)]
pub struct OrderItem {
    pub expr: Expr,
    pub ascending: bool,
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

/// Scalar/boolean expressions (§A.1 "Expressions").
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    /// `DATE '2020-01-02'`.
    DateLit(String),
    Var(Ident),
    /// `x.k` — property access (σ(x,k), a value set).
    Prop(Box<Expr>, String),
    /// `x:Person` or `x:Post|Comment` — label test (x:ℓ).
    LabelTest(Box<Expr>, Vec<String>),
    /// `nodes(p)[i]` — zero-based indexing into a list.
    Index(Box<Expr>, Box<Expr>),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Built-in scalar functions.
    Func(Func, Vec<Expr>),
    /// Aggregation; `None` argument means `COUNT(*)`.
    Aggregate {
        op: AggOp,
        distinct: bool,
        arg: Option<Box<Expr>>,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        operand: Option<Box<Expr>>,
        whens: Vec<(Expr, Expr)>,
        else_: Option<Box<Expr>>,
    },
    /// `EXISTS (query)` — explicit existential subquery.
    Exists(Box<Query>),
    /// A graph pattern used as predicate — implicit existential (§3).
    PatternPredicate(Box<Pattern>),
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    /// Set membership (the guided tour's fix for multi-valued joins).
    In,
    /// Set inclusion.
    Subset,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::In => "IN",
            BinaryOp::Subset => "SUBSET",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
        })
    }
}

/// Built-in scalar functions (§A.1 names Labels, Nodes, Edges, Size and
/// "standard ones for type casting, string, date and collection handling").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Func {
    /// Label set of an element, as a list.
    Labels,
    /// Node list of a path.
    Nodes,
    /// Edge list of a path.
    Edges,
    /// Length of a path (hop count).
    Length,
    /// Cardinality of a value set / list / string length.
    Size,
    /// Cast to string.
    ToString,
    /// Cast to integer.
    ToInteger,
    /// Cast to float.
    ToFloat,
    /// Lowercase a string.
    Lower,
    /// Uppercase a string.
    Upper,
    /// Absolute value.
    Abs,
    /// Strip leading/trailing whitespace.
    Trim,
    /// Substring containment test.
    Contains,
    /// String prefix test.
    StartsWith,
    /// String suffix test.
    EndsWith,
    /// `substring(s, start [, len])`, zero-based like `nodes(p)[i]`.
    Substring,
    /// Year of a date.
    Year,
    /// Month of a date.
    Month,
    /// Day of a date.
    Day,
    /// Round a float down.
    Floor,
    /// Round a float up.
    Ceil,
    /// Square root.
    Sqrt,
    /// First element of a list.
    Head,
    /// Last element of a list.
    Last,
}

impl Func {
    /// Recognize a function by (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name.to_ascii_lowercase().as_str() {
            "labels" => Func::Labels,
            "nodes" => Func::Nodes,
            "edges" => Func::Edges,
            "length" => Func::Length,
            "size" => Func::Size,
            "tostring" | "to_string" => Func::ToString,
            "tointeger" | "to_integer" => Func::ToInteger,
            "tofloat" | "to_float" => Func::ToFloat,
            "lower" => Func::Lower,
            "upper" => Func::Upper,
            "abs" => Func::Abs,
            "trim" => Func::Trim,
            "contains" => Func::Contains,
            "startswith" | "starts_with" => Func::StartsWith,
            "endswith" | "ends_with" => Func::EndsWith,
            "substring" => Func::Substring,
            "year" => Func::Year,
            "month" => Func::Month,
            "day" => Func::Day,
            "floor" => Func::Floor,
            "ceil" => Func::Ceil,
            "sqrt" => Func::Sqrt,
            "head" => Func::Head,
            "last" => Func::Last,
            _ => return None,
        })
    }

    /// Canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            Func::Labels => "labels",
            Func::Nodes => "nodes",
            Func::Edges => "edges",
            Func::Length => "length",
            Func::Size => "size",
            Func::ToString => "toString",
            Func::ToInteger => "toInteger",
            Func::ToFloat => "toFloat",
            Func::Lower => "lower",
            Func::Upper => "upper",
            Func::Abs => "abs",
            Func::Trim => "trim",
            Func::Contains => "contains",
            Func::StartsWith => "startsWith",
            Func::EndsWith => "endsWith",
            Func::Substring => "substring",
            Func::Year => "year",
            Func::Month => "month",
            Func::Day => "day",
            Func::Floor => "floor",
            Func::Ceil => "ceil",
            Func::Sqrt => "sqrt",
            Func::Head => "head",
            Func::Last => "last",
        }
    }
}

/// Aggregation functions (§A.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggOp {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Collect,
}

impl AggOp {
    /// Recognize an aggregate by (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<AggOp> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggOp::Count,
            "sum" => AggOp::Sum,
            "min" => AggOp::Min,
            "max" => AggOp::Max,
            "avg" => AggOp::Avg,
            "collect" => AggOp::Collect,
            _ => return None,
        })
    }

    /// Canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Count => "COUNT",
            AggOp::Sum => "SUM",
            AggOp::Min => "MIN",
            AggOp::Max => "MAX",
            AggOp::Avg => "AVG",
            AggOp::Collect => "COLLECT",
        }
    }
}

impl Expr {
    /// The source span of the leftmost spanned identifier inside this
    /// expression, if any. Literals carry no span of their own, so an
    /// all-literal expression yields `None`; callers fall back to the
    /// enclosing clause span.
    #[must_use]
    pub fn first_span(&self) -> Option<Span> {
        match self {
            Expr::Var(v) => Some(v.span.span()),
            Expr::Prop(e, _) | Expr::LabelTest(e, _) | Expr::Unary(_, e) => e.first_span(),
            Expr::Index(a, b) | Expr::Binary(_, a, b) => a.first_span().or_else(|| b.first_span()),
            Expr::Func(_, args) => args.iter().find_map(Expr::first_span),
            Expr::Aggregate { arg, .. } => arg.as_deref().and_then(Expr::first_span),
            Expr::Case {
                operand,
                whens,
                else_,
            } => operand
                .as_deref()
                .and_then(Expr::first_span)
                .or_else(|| {
                    whens
                        .iter()
                        .find_map(|(c, r)| c.first_span().or_else(|| r.first_span()))
                })
                .or_else(|| else_.as_deref().and_then(Expr::first_span)),
            Expr::PatternPredicate(p) => Some(p.span.span()),
            _ => None,
        }
    }

    /// Does this expression (transitively) contain an aggregate?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Prop(e, _) | Expr::LabelTest(e, _) | Expr::Unary(_, e) => e.contains_aggregate(),
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                a.contains_aggregate() || b.contains_aggregate()
            }
            Expr::Func(_, args) => args.iter().any(Expr::contains_aggregate),
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || whens
                        .iter()
                        .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_.as_deref().is_some_and(Expr::contains_aggregate)
            }
            _ => false,
        }
    }
}
