//! Parse errors with source context.

use crate::token::Span;
use std::fmt;

/// What went wrong during lexing/parsing.
#[derive(Clone, PartialEq, Debug)]
pub enum ParseErrorKind {
    UnexpectedChar(char),
    UnterminatedString,
    UnterminatedComment,
    BadNumber(String),
    /// Generic "expected X, found Y".
    Expected {
        what: String,
        found: String,
    },
    /// A message with no structured shape.
    Message(String),
}

/// A parse error carrying the offending span and a rendered source line.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    pub kind: ParseErrorKind,
    pub span: Span,
    line: u32,
    column: u32,
    snippet: String,
}

impl ParseError {
    /// Build an error, extracting line/column and the source line from
    /// `src` for display.
    pub fn new(kind: ParseErrorKind, span: Span, src: &str) -> Self {
        let upto = &src[..span.start.min(src.len())];
        let line = upto.matches('\n').count() as u32 + 1;
        let line_start = upto.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let column = (span.start - line_start) as u32 + 1;
        let line_end = src[line_start..]
            .find('\n')
            .map(|i| line_start + i)
            .unwrap_or(src.len());
        ParseError {
            kind,
            span,
            line,
            column,
            snippet: src[line_start..line_end].to_owned(),
        }
    }

    /// 1-based line of the error.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based column of the error.
    pub fn column(&self) -> u32 {
        self.column
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}")?,
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal")?,
            ParseErrorKind::UnterminatedComment => write!(f, "unterminated block comment")?,
            ParseErrorKind::BadNumber(n) => write!(f, "malformed number '{n}'")?,
            ParseErrorKind::Expected { what, found } => {
                write!(f, "expected {what}, found {found}")?
            }
            ParseErrorKind::Message(m) => write!(f, "{m}")?,
        }
        writeln!(f, " at line {}, column {}", self.line, self.column)?;
        writeln!(f, "  | {}", self.snippet)?;
        let pad = " ".repeat(self.column as usize - 1);
        let width = (self.span.end - self.span.start).max(1);
        write!(f, "  | {pad}{}", "^".repeat(width.min(40)))
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_column_extraction() {
        let src = "line one\nline two here";
        let err = ParseError::new(
            ParseErrorKind::Message("boom".into()),
            Span::new(14, 17),
            src,
        );
        assert_eq!(err.line(), 2);
        assert_eq!(err.column(), 6);
        let shown = err.to_string();
        assert!(shown.contains("line 2, column 6"));
        assert!(shown.contains("line two here"));
        assert!(shown.contains("^^^"));
    }
}
