//! Parser throughput over the paper's query corpus: every §3/§5 query,
//! parsed end-to-end (lexer → AST), plus the pretty-print roundtrip.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gcore_parser::{parse_statement, print_statement};
use gcore_repro::corpus;
use std::hint::black_box;

fn bench_parse_corpus(c: &mut Criterion) {
    let mut g = c.benchmark_group("parser");
    for q in corpus::ALL {
        g.bench_function(format!("parse/{}", q.id), |b| {
            b.iter(|| parse_statement(black_box(q.text)).unwrap())
        });
    }
    g.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("parser");
    let asts: Vec<_> = corpus::ALL
        .iter()
        .map(|q| parse_statement(q.text).unwrap())
        .collect();
    g.bench_function("pretty_print/corpus", |b| {
        b.iter_batched(
            || asts.clone(),
            |asts| {
                for a in &asts {
                    black_box(print_statement(a));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_parse_corpus, bench_roundtrip);
criterion_main!(benches);
