//! CONSTRUCT cost (§A.3): identity reuse, skolemization, grouping,
//! aggregation and SET, at a fixed SNB scale.

use criterion::{criterion_group, criterion_main, Criterion};
use gcore_bench::snb_engine;
use std::hint::black_box;

fn bench_construct(c: &mut Criterion) {
    let mut engine = snb_engine(1000);
    let mut g = c.benchmark_group("construct");
    g.sample_size(15);

    let cases: &[(&str, &str)] = &[
        ("identity_nodes", "CONSTRUCT (n) MATCH (n:Person)"),
        (
            "identity_subgraph",
            "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person)",
        ),
        (
            "skolem_per_binding",
            "CONSTRUCT (v :Marker {of := n.personId}) MATCH (n:Person)",
        ),
        (
            "group_aggregation",
            "CONSTRUCT (x GROUP e :Company {name := e})<-[:worksAt]-(n) \
             MATCH (n:Person {employer = e})",
        ),
        (
            "count_aggregation",
            "CONSTRUCT (t)<-[e:pop]-(n) SET e.cnt := COUNT(*) \
             MATCH (n:Person)-[:hasInterest]->(t:Tag)",
        ),
        (
            "graph_union_shorthand",
            "CONSTRUCT snb, (n) MATCH (n:Person) WHERE n.personId < 10",
        ),
    ];
    for (name, query) in cases {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(engine.query_graph(query).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_construct);
criterion_main!(benches);
