//! Path machinery (§3, §A.1): reachability, shortest, k-shortest,
//! weighted shortest over PATH views, stored-path matching and the
//! ALL-paths projection, at a fixed SNB scale.

use criterion::{criterion_group, criterion_main, Criterion};
use gcore::paths::{ExpandMode, PathSearcher, ViewMap};
use gcore::regex::Nfa;
use gcore_bench::{snb_engine_with_messages, tour_engine};
use gcore_parser::ast::Regex;
use gcore_ppg::hash::FxHashSet;
use gcore_snb::{generate_standalone, SnbConfig};
use std::hint::black_box;

fn bench_paths(c: &mut Criterion) {
    let mut engine = snb_engine_with_messages(1000);
    let mut g = c.benchmark_group("paths");
    g.sample_size(15);

    let cases: &[(&str, &str)] = &[
        (
            "reachability",
            "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) \
             WHERE n.personId = 0",
        ),
        (
            "shortest_1",
            "CONSTRUCT (n)-/@p:sp/->(m) \
             MATCH (n:Person)-/p <:knows*>/->(m:Person) \
             WHERE n.personId = 0",
        ),
        (
            "shortest_3",
            "CONSTRUCT (n)-/@p:sp/->(m) \
             MATCH (n)-/3 SHORTEST p <:knows*>/->(m) \
             WHERE n.personId = 0 AND (m:Person)",
        ),
        (
            "weighted_shortest",
            "PATH chatty = (x)-[e:knows]->(y) COST 1 / (1 + e.nr_messages) \
             CONSTRUCT (n)-/@p:w/->(m) \
             MATCH (n:Person)-/p <~chatty*>/->(m:Person) ON msg_graph \
             WHERE n.personId = 0",
        ),
        (
            "all_paths_projection",
            "CONSTRUCT (n)-/p/->(m) \
             MATCH (n:Person)-/ALL p <:knows*>/->(m:Person) \
             WHERE n.personId = 0 AND m.personId = 7",
        ),
        (
            "regex_alternation",
            "CONSTRUCT (m) \
             MATCH (n:Person)-/<(:knows + :knows-)* :hasInterest>/->(m:Tag) \
             WHERE n.personId = 0",
        ),
    ];
    for (name, query) in cases {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(engine.query_graph(query).unwrap()))
        });
    }
    g.finish();
}

/// Matching over *stored* paths — the capability §3 calls unique: a
/// database of paths queried like any other data.
fn bench_stored_paths(c: &mut Criterion) {
    let mut engine = snb_engine_with_messages(1000);
    // Materialize a path database once.
    engine
        .run(
            "GRAPH VIEW path_db AS ( \
               CONSTRUCT (n)-/@p:route/->(m) \
               MATCH (n:Person)-/p <:knows*>/->(m:Person) \
               WHERE n.personId < 8 )",
        )
        .unwrap();
    let mut g = c.benchmark_group("paths");
    g.sample_size(15);
    g.bench_function("stored_path_scan", |b| {
        b.iter(|| {
            black_box(
                engine
                    .query_table(
                        "SELECT length(p) AS hops, COUNT(*) AS n \
                         MATCH ()-/@p:route/->() ON path_db \
                         GROUP BY length(p)",
                    )
                    .unwrap(),
            )
        })
    });
    g.finish();
}

/// The guided tour's full three-stage Wagner pipeline on the toy graph —
/// an end-to-end latency figure.
fn bench_tour_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("paths");
    g.bench_function("wagner_pipeline_toy", |b| {
        b.iter(|| {
            let mut engine = tour_engine();
            engine
                .run(
                    "GRAPH VIEW social_graph1 AS ( \
                     CONSTRUCT social_graph, (n)-[e]->(m) SET e.nr_messages := COUNT(*) \
                     MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) \
                     OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2), \
                              (msg2:Post|Comment)-[c2]->(m) \
                     WHERE (c1:has_creator) AND (c2:has_creator) )",
                )
                .unwrap();
            engine
                .run(
                    "GRAPH VIEW social_graph2 AS ( \
                     PATH wKnows = (x)-[e:knows]->(y) WHERE NOT 'Acme' IN y.employer \
                       COST 1 / (1 + e.nr_messages) \
                     CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) \
                     MATCH (n:Person)-/p <~wKnows*>/->(m:Person) ON social_graph1 \
                     WHERE (m)-[:hasInterest]->(:Tag {name = 'Wagner'}) \
                       AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) \
                       AND n.firstName = 'John' AND n.lastName = 'Doe' )",
                )
                .unwrap();
            black_box(
                engine
                    .query_graph(
                        "CONSTRUCT (n)-[e:wagnerFriend {score := COUNT(*)}]->(m) \
                         WHEN e.score > 0 \
                         MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 \
                         WHERE m = nodes(p)[1]",
                    )
                    .unwrap(),
            )
        })
    });
    g.finish();
}

/// Controlled old-vs-new expansion comparison (mirroring the
/// `binding_layout_*` pattern): the *same* SNB graph, the *same*
/// product-automaton searches, in one process — only the edge-expansion
/// strategy differs. `scan` filters every incident edge by label (the
/// pre-overhaul expansion); `indexed` reads the label-partitioned
/// adjacency slices. The workload is label-selective: `(:knows +
/// :knows-)*` over Person nodes whose in-adjacency is dominated by
/// `has_creator` message edges that scanning must touch and the index
/// never sees.
fn bench_expansion_strategies(c: &mut Criterion) {
    for &scale in &[1000usize, 4000] {
        let data = generate_standalone(&SnbConfig::scale(scale));
        let graph = data.graph;
        assert!(graph.has_label_index(), "GraphBuilder::build indexes");
        let re = Regex::Star(Box::new(Regex::Alt(vec![
            Regex::Label("knows".into()),
            Regex::LabelInv("knows".into()),
        ])));
        let nfa = Nfa::compile(&re);
        let views = ViewMap::default();

        let mut g = c.benchmark_group(format!("path_expansion_snb{scale}"));
        g.sample_size(10);

        // Reachability from a handful of sources (each explores the
        // whole knows-connected component).
        let sources: Vec<_> = data.persons.iter().take(4).copied().collect();
        for (name, mode) in [
            ("reach_scan", ExpandMode::Scan),
            ("reach_indexed", ExpandMode::Indexed),
        ] {
            let s = PathSearcher::new(&graph, &nfa, &views).with_expansion(mode);
            let sources = sources.clone();
            g.bench_function(name, |b| {
                b.iter(|| {
                    let mut total = 0usize;
                    for &src in &sources {
                        total += black_box(s.reachable(src)).len();
                    }
                    total
                })
            });
        }

        // Single-pair canonical shortest (cone-pruned on both sides —
        // only the expansion differs).
        let (src, dst) = (data.persons[0], data.persons[scale / 2]);
        let mut targets = FxHashSet::default();
        targets.insert(dst);
        for (name, mode) in [
            ("shortest_scan", ExpandMode::Scan),
            ("shortest_indexed", ExpandMode::Indexed),
        ] {
            let s = PathSearcher::new(&graph, &nfa, &views).with_expansion(mode);
            let targets = targets.clone();
            g.bench_function(name, |b| {
                b.iter(|| black_box(s.k_shortest(src, 1, Some(&targets))).len())
            });
        }

        // Many-source reachability: per-source product searches vs the
        // SCC-condensed shared frontier (both label-indexed).
        let many: Vec<_> = data.persons.iter().take(64).copied().collect();
        let s = PathSearcher::new(&graph, &nfa, &views);
        {
            let many = many.clone();
            g.bench_function("multi_source_per_source", |b| {
                b.iter(|| {
                    let mut total = 0usize;
                    for &src in &many {
                        total += black_box(s.reachable(src)).len();
                    }
                    total
                })
            });
        }
        {
            let many = many.clone();
            g.bench_function("multi_source_shared_frontier", |b| {
                b.iter(|| {
                    let m = black_box(s.reachable_many(&many));
                    m.values().map(|v| v.len()).sum::<usize>()
                })
            });
        }
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_paths,
    bench_stored_paths,
    bench_tour_pipeline,
    bench_expansion_strategies
);
criterion_main!(benches);
