//! Path machinery (§3, §A.1): reachability, shortest, k-shortest,
//! weighted shortest over PATH views, stored-path matching and the
//! ALL-paths projection, at a fixed SNB scale.

use criterion::{criterion_group, criterion_main, Criterion};
use gcore_bench::{snb_engine_with_messages, tour_engine};
use std::hint::black_box;

fn bench_paths(c: &mut Criterion) {
    let mut engine = snb_engine_with_messages(1000);
    let mut g = c.benchmark_group("paths");
    g.sample_size(15);

    let cases: &[(&str, &str)] = &[
        (
            "reachability",
            "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) \
             WHERE n.personId = 0",
        ),
        (
            "shortest_1",
            "CONSTRUCT (n)-/@p:sp/->(m) \
             MATCH (n:Person)-/p <:knows*>/->(m:Person) \
             WHERE n.personId = 0",
        ),
        (
            "shortest_3",
            "CONSTRUCT (n)-/@p:sp/->(m) \
             MATCH (n)-/3 SHORTEST p <:knows*>/->(m) \
             WHERE n.personId = 0 AND (m:Person)",
        ),
        (
            "weighted_shortest",
            "PATH chatty = (x)-[e:knows]->(y) COST 1 / (1 + e.nr_messages) \
             CONSTRUCT (n)-/@p:w/->(m) \
             MATCH (n:Person)-/p <~chatty*>/->(m:Person) ON msg_graph \
             WHERE n.personId = 0",
        ),
        (
            "all_paths_projection",
            "CONSTRUCT (n)-/p/->(m) \
             MATCH (n:Person)-/ALL p <:knows*>/->(m:Person) \
             WHERE n.personId = 0 AND m.personId = 7",
        ),
        (
            "regex_alternation",
            "CONSTRUCT (m) \
             MATCH (n:Person)-/<(:knows + :knows-)* :hasInterest>/->(m:Tag) \
             WHERE n.personId = 0",
        ),
    ];
    for (name, query) in cases {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(engine.query_graph(query).unwrap()))
        });
    }
    g.finish();
}

/// Matching over *stored* paths — the capability §3 calls unique: a
/// database of paths queried like any other data.
fn bench_stored_paths(c: &mut Criterion) {
    let mut engine = snb_engine_with_messages(1000);
    // Materialize a path database once.
    engine
        .run(
            "GRAPH VIEW path_db AS ( \
               CONSTRUCT (n)-/@p:route/->(m) \
               MATCH (n:Person)-/p <:knows*>/->(m:Person) \
               WHERE n.personId < 8 )",
        )
        .unwrap();
    let mut g = c.benchmark_group("paths");
    g.sample_size(15);
    g.bench_function("stored_path_scan", |b| {
        b.iter(|| {
            black_box(
                engine
                    .query_table(
                        "SELECT length(p) AS hops, COUNT(*) AS n \
                         MATCH ()-/@p:route/->() ON path_db \
                         GROUP BY length(p)",
                    )
                    .unwrap(),
            )
        })
    });
    g.finish();
}

/// The guided tour's full three-stage Wagner pipeline on the toy graph —
/// an end-to-end latency figure.
fn bench_tour_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("paths");
    g.bench_function("wagner_pipeline_toy", |b| {
        b.iter(|| {
            let mut engine = tour_engine();
            engine
                .run(
                    "GRAPH VIEW social_graph1 AS ( \
                     CONSTRUCT social_graph, (n)-[e]->(m) SET e.nr_messages := COUNT(*) \
                     MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) \
                     OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2), \
                              (msg2:Post|Comment)-[c2]->(m) \
                     WHERE (c1:has_creator) AND (c2:has_creator) )",
                )
                .unwrap();
            engine
                .run(
                    "GRAPH VIEW social_graph2 AS ( \
                     PATH wKnows = (x)-[e:knows]->(y) WHERE NOT 'Acme' IN y.employer \
                       COST 1 / (1 + e.nr_messages) \
                     CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) \
                     MATCH (n:Person)-/p <~wKnows*>/->(m:Person) ON social_graph1 \
                     WHERE (m)-[:hasInterest]->(:Tag {name = 'Wagner'}) \
                       AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) \
                       AND n.firstName = 'John' AND n.lastName = 'Doe' )",
                )
                .unwrap();
            black_box(
                engine
                    .query_graph(
                        "CONSTRUCT (n)-[e:wagnerFriend {score := COUNT(*)}]->(m) \
                         WHEN e.score > 0 \
                         MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 \
                         WHERE m = nodes(p)[1]",
                    )
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_paths,
    bench_stored_paths,
    bench_tour_pipeline
);
criterion_main!(benches);
