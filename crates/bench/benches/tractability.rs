//! The §4 tractability claim, measured: fixed queries, growing data.
//!
//! "for each fixed G-CORE query q, the result JqKG … can be computed in
//! polynomial time". Each group below sweeps one fixed query over SNB
//! networks of growing size; criterion's per-scale throughput lets the
//! EXPERIMENTS.md table check that time grows polynomially (near-
//! linearly for the path operators) rather than exponentially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcore_bench::{snb_engine, SCALES};
use std::hint::black_box;

/// Fixed queries of the sweep. `personId`-rooted so the work per query
/// is dominated by graph exploration, not by result size.
const SWEEP: &[(&str, &str)] = &[
    (
        "pattern_match",
        "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) \
         WHERE n.personId < 32",
    ),
    (
        "reachability",
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) \
         WHERE n.personId = 0",
    ),
    (
        "shortest_paths",
        "CONSTRUCT (n)-/@p:sp/->(m) \
         MATCH (n:Person)-/p <:knows*>/->(m:Person) \
         WHERE n.personId = 0",
    ),
    (
        "construct_aggregation",
        "CONSTRUCT (t)<-[e:pop]-(n) SET e.cnt := COUNT(*) \
         MATCH (n:Person)-[:hasInterest]->(t:Tag)",
    ),
    (
        "exists_filter",
        "CONSTRUCT (n) MATCH (n:Person) \
         WHERE (n)-[:hasInterest]->(:Tag {name = 'Wagner'})",
    ),
];

fn bench_tractability(c: &mut Criterion) {
    for (name, query) in SWEEP {
        let mut g = c.benchmark_group(format!("tractability/{name}"));
        g.sample_size(10);
        for &persons in SCALES {
            let mut engine = snb_engine(persons);
            let nodes = engine.graph("snb").unwrap().node_count() as u64;
            g.throughput(Throughput::Elements(nodes));
            g.bench_with_input(BenchmarkId::from_parameter(persons), &persons, |b, _| {
                b.iter(|| black_box(engine.query_graph(query).unwrap()))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_tractability);
criterion_main!(benches);
