//! Pattern-matching cost (§A.2): node scans, edge hops, two-hop joins,
//! multi-pattern joins and OPTIONAL, at a fixed SNB scale — plus a
//! direct row-major vs columnar binding-table join comparison on tables
//! extracted from the SNB graph.

use criterion::{criterion_group, criterion_main, Criterion};
use gcore::binding::{BindingTable, Bound, Column, TableBuilder};
use gcore_bench::snb_engine;
use gcore_ppg::{Label, NodeId, PathPropertyGraph};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut engine = snb_engine(1000);
    let mut g = c.benchmark_group("matching");
    g.sample_size(20);

    let cases: &[(&str, &str)] = &[
        ("node_scan", "CONSTRUCT (n) MATCH (n:Person)"),
        (
            "node_scan_filtered",
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 50",
        ),
        (
            "edge_hop",
            "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) \
             WHERE n.personId < 50",
        ),
        (
            "two_hop",
            "CONSTRUCT (n)-[:fof]->(k) \
             MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) \
             WHERE n.personId < 10",
        ),
        (
            "value_join",
            "CONSTRUCT (a)-[:colleague]->(b) \
             MATCH (a:Person {employer = e}), (b:Person) \
             WHERE e IN b.employer AND a.personId < 20",
        ),
        (
            "optional",
            "CONSTRUCT (n) SET n.msgs := COUNT(*) \
             MATCH (n:Person) \
             OPTIONAL (n)<-[:has_creator]-(msg:Post) \
             WHERE n.personId < 100",
        ),
        (
            "exists_predicate",
            "CONSTRUCT (n) MATCH (n:Person) \
             WHERE (n)-[:hasInterest]->(:Tag {name = 'Wagner'}) \
               AND n.personId < 200",
        ),
    ];

    for (name, query) in cases {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(engine.query_graph(query).unwrap()))
        });
    }
    g.finish();
}

/// The same join-heavy shapes at SNB scale 4000 — the binding-table
/// scale target from the ROADMAP. These are the queries whose
/// intermediate Ω tables get large enough for physical layout to matter.
/// The scale-4000 engine is generated once and shared with the layout
/// comparison below.
fn bench_snb4000(c: &mut Criterion) {
    let mut engine = snb_engine(4000);
    bench_matching_snb4000(c, &mut engine);
    bench_profiling_overhead(c, &mut engine);
    bench_binding_layout(c, &engine);
}

fn bench_matching_snb4000(c: &mut Criterion, engine: &mut gcore::Engine) {
    let mut g = c.benchmark_group("matching_snb4000");
    g.sample_size(10);

    let cases: &[(&str, &str)] = &[
        ("node_scan", "CONSTRUCT (n) MATCH (n:Person)"),
        (
            "edge_hop",
            "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) \
             WHERE n.personId < 200",
        ),
        (
            "two_hop",
            "CONSTRUCT (n)-[:fof]->(k) \
             MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) \
             WHERE n.personId < 40",
        ),
        (
            "value_join",
            "CONSTRUCT (a)-[:colleague]->(b) \
             MATCH (a:Person {employer = e}), (b:Person) \
             WHERE e IN b.employer AND a.personId < 40",
        ),
        (
            "optional",
            "CONSTRUCT (n) SET n.msgs := COUNT(*) \
             MATCH (n:Person) \
             OPTIONAL (n)<-[:has_creator]-(msg:Post) \
             WHERE n.personId < 400",
        ),
    ];

    for (name, query) in cases {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(engine.query_graph(query).unwrap()))
        });
    }
    g.finish();
}

/// Profiling overhead, one process, two code paths (the preferred
/// comparison shape): the same join-heavy statements with span
/// collection off (the production default — one `Option` check per
/// boundary, no clock reads) and on (`Engine::set_profiling`). The
/// `_off` numbers double as the matching_snb4000 regression reference;
/// the `_on` deltas are the cost of `EXPLAIN ANALYZE` / the serve
/// slow-query log.
fn bench_profiling_overhead(c: &mut Criterion, engine: &mut gcore::Engine) {
    let mut g = c.benchmark_group("profiling_overhead_snb4000");
    g.sample_size(10);

    let cases: &[(&str, &str)] = &[
        (
            "two_hop",
            "CONSTRUCT (n)-[:fof]->(k) \
             MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) \
             WHERE n.personId < 40",
        ),
        (
            "value_join",
            "CONSTRUCT (a)-[:colleague]->(b) \
             MATCH (a:Person {employer = e}), (b:Person) \
             WHERE e IN b.employer AND a.personId < 40",
        ),
    ];
    for (name, query) in cases {
        engine.set_profiling(false);
        g.bench_function(format!("{name}_off"), |b| {
            b.iter(|| black_box(engine.query_graph(query).unwrap()))
        });
        engine.set_profiling(true);
        g.bench_function(format!("{name}_on"), |b| {
            b.iter(|| black_box(engine.query_graph(query).unwrap()))
        });
        engine.set_profiling(false);
    }
    g.finish();
}

// ---------------------------------------------------------------------
// Row-major reference implementation (the pre-columnar layout): rows as
// Vec<Vec<Bound>>, hash join keyed on cloned Bound vectors, sort + dedup
// by moving whole rows. Kept here as the baseline the columnar
// BindingTable is measured against.
// ---------------------------------------------------------------------

struct RowTable {
    vars: Vec<String>,
    rows: Vec<Vec<Bound>>,
}

impl RowTable {
    fn new(vars: Vec<String>, mut rows: Vec<Vec<Bound>>) -> Self {
        rows.sort();
        rows.dedup();
        RowTable { vars, rows }
    }

    fn join(&self, other: &RowTable) -> RowTable {
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.vars.iter().position(|w| w == v).map(|j| (i, j)))
            .collect();
        let b_new: Vec<usize> = (0..other.vars.len())
            .filter(|j| !self.vars.contains(&other.vars[*j]))
            .collect();
        let mut vars = self.vars.clone();
        for &j in &b_new {
            vars.push(other.vars[j].clone());
        }
        let mut keyed: BTreeMap<Vec<Bound>, Vec<usize>> = BTreeMap::new();
        for (idx, row) in other.rows.iter().enumerate() {
            let key: Vec<Bound> = shared.iter().map(|&(_, j)| row[j].clone()).collect();
            keyed.entry(key).or_default().push(idx);
        }
        let mut rows = Vec::new();
        for a_row in &self.rows {
            let key: Vec<Bound> = shared.iter().map(|&(i, _)| a_row[i].clone()).collect();
            if let Some(idxs) = keyed.get(&key) {
                for &b_idx in idxs {
                    let b_row = &other.rows[b_idx];
                    let mut merged = a_row.clone();
                    for &j in &b_new {
                        merged.push(b_row[j].clone());
                    }
                    rows.push(merged);
                }
            }
        }
        RowTable::new(vars, rows)
    }
}

/// (src, dst) pairs of every `knows` edge.
fn knows_pairs(g: &PathPropertyGraph) -> Vec<(NodeId, NodeId)> {
    let knows = Label::lookup("knows").expect("snb graph interns 'knows'");
    let mut pairs: Vec<(NodeId, NodeId)> = g
        .edge_ids_sorted()
        .into_iter()
        .filter_map(|e| {
            let d = g.edge(e)?;
            d.attrs.labels.contains(knows).then_some((d.src, d.dst))
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Two-hop friend-of-friend join on the SNB `knows` relation, row-major
/// baseline vs the columnar BindingTable, at scale 4000.
fn bench_binding_layout(c: &mut Criterion, engine: &gcore::Engine) {
    let graph = engine.graph("snb").expect("snb graph registered");
    let pairs = knows_pairs(&graph);

    let mut g = c.benchmark_group("binding_layout_snb4000");
    g.sample_size(10);

    let col = |v: &str| Column {
        var: v.to_owned(),
        graph: graph.clone(),
    };
    let bound_rows = || -> Vec<Vec<Bound>> {
        pairs
            .iter()
            .map(|&(s, d)| vec![Bound::Node(s), Bound::Node(d)])
            .collect()
    };

    g.bench_function("row_major_two_hop_join", |b| {
        b.iter(|| {
            let left = RowTable::new(vec!["n".into(), "m".into()], bound_rows());
            let right = RowTable::new(vec!["m".into(), "k".into()], bound_rows());
            black_box(left.join(&right).rows.len())
        })
    });

    g.bench_function("columnar_two_hop_join", |b| {
        b.iter(|| {
            let build = |lv: &str, rv: &str| -> BindingTable {
                let mut t = TableBuilder::new(vec![col(lv), col(rv)]);
                for &(s, d) in &pairs {
                    t.push(&[Bound::Node(s), Bound::Node(d)]);
                }
                t.finish()
            };
            let left = build("n", "m");
            let right = build("m", "k");
            black_box(left.join(&right).len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_matching, bench_snb4000);
criterion_main!(benches);
