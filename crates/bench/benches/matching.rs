//! Pattern-matching cost (§A.2): node scans, edge hops, two-hop joins,
//! multi-pattern joins and OPTIONAL, at a fixed SNB scale.

use criterion::{criterion_group, criterion_main, Criterion};
use gcore_bench::snb_engine;
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut engine = snb_engine(1000);
    let mut g = c.benchmark_group("matching");
    g.sample_size(20);

    let cases: &[(&str, &str)] = &[
        (
            "node_scan",
            "CONSTRUCT (n) MATCH (n:Person)",
        ),
        (
            "node_scan_filtered",
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 50",
        ),
        (
            "edge_hop",
            "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) \
             WHERE n.personId < 50",
        ),
        (
            "two_hop",
            "CONSTRUCT (n)-[:fof]->(k) \
             MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) \
             WHERE n.personId < 10",
        ),
        (
            "value_join",
            "CONSTRUCT (a)-[:colleague]->(b) \
             MATCH (a:Person {employer = e}), (b:Person) \
             WHERE e IN b.employer AND a.personId < 20",
        ),
        (
            "optional",
            "CONSTRUCT (n) SET n.msgs := COUNT(*) \
             MATCH (n:Person) \
             OPTIONAL (n)<-[:has_creator]-(msg:Post) \
             WHERE n.personId < 100",
        ),
        (
            "exists_predicate",
            "CONSTRUCT (n) MATCH (n:Person) \
             WHERE (n)-[:hasInterest]->(:Tag {name = 'Wagner'}) \
               AND n.personId < 200",
        ),
    ];

    for (name, query) in cases {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(engine.query_graph(query).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
