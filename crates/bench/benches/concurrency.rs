//! Concurrent corpus throughput over one shared engine snapshot:
//! `Engine::run_batch_parallel` at 1/2/4/8 worker threads, SNB scales
//! 1000 and 4000.
//!
//! One iteration evaluates the whole mixed read corpus (scans, joins,
//! OPTIONAL, reachability, shortest paths) once; the per-iteration time
//! at `n` threads versus 1 thread is the corpus-throughput scaling of
//! the snapshot/executor split. Every statement evaluates read-only
//! against the same frozen snapshot, so thread counts change wall-clock
//! only — results are identical (pinned by the differential suite in
//! `crates/core/tests/snapshot_equivalence.rs`).
//!
//! Caveat for readings: the per-snapshot SCC-condensation cache is
//! shared by all threads of a batch *and* across iterations (the
//! snapshot lives as long as the engine goes unwritten), so path-query
//! statements amortize their condensations after the first iteration —
//! that is the intended steady state, identical at every thread count.

use criterion::{criterion_group, criterion_main, Criterion};
use gcore_bench::snb_engine;
use std::hint::black_box;

/// A mixed read-only corpus: per-statement costs vary widely on
/// purpose, so the work-stealing batch has skew to absorb.
const CORPUS: &[&str] = &[
    "CONSTRUCT (n) MATCH (n:Person)",
    "CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 50",
    "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) WHERE n.personId < 50",
    "CONSTRUCT (n)-[:fof]->(k) \
     MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) WHERE n.personId < 10",
    "CONSTRUCT (a)-[:colleague]->(b) \
     MATCH (a:Person {employer = e}), (b:Person) WHERE e IN b.employer AND a.personId < 20",
    "CONSTRUCT (n) SET n.msgs := COUNT(*) \
     MATCH (n:Person) OPTIONAL (n)<-[:has_creator]-(msg:Post) WHERE n.personId < 100",
    "CONSTRUCT (n) MATCH (n:Person) \
     WHERE (n)-[:hasInterest]->(:Tag {name = 'Wagner'}) AND n.personId < 200",
    "SELECT n.personId AS id, n.firstName AS name MATCH (n:Person) WHERE n.personId < 300",
    "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId = 0",
    "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId = 3",
    "CONSTRUCT (n)-/@p:sp/->(m) \
     MATCH (n:Person)-/p <:knows*>/->(m:Person) WHERE n.personId = 1",
    "CONSTRUCT (m) MATCH (n:Person)-/<:knows :knows->/->(m:Person) WHERE n.personId < 5",
    "CONSTRUCT (t) MATCH (n:Person)-[:hasInterest]->(t:Tag) WHERE n.personId < 150",
    "CONSTRUCT (c) MATCH (c:City)<-[:isLocatedIn]-(n:Person) WHERE n.personId < 120",
    "SELECT m.firstName AS friend MATCH (n:Person)-[:knows]->(m:Person) WHERE n.personId < 80",
    "CONSTRUCT (n)-[:nearby]->(m) \
     MATCH (n:Person)-[:isLocatedIn]->(c)<-[:isLocatedIn]-(m:Person) WHERE n.personId < 6",
];

fn bench_scale(c: &mut Criterion, persons: usize) {
    let mut engine = snb_engine(persons);
    // Freeze the snapshot once up front so iteration 1 does not pay the
    // clone+index cost the steady state never sees.
    let _ = engine.snapshot();
    let mut g = c.benchmark_group(format!("concurrency_snb{persons}"));
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("corpus_{threads}t"), |b| {
            b.iter(|| {
                let results = engine.run_batch_parallel(CORPUS, threads);
                assert!(results.iter().all(|r| r.is_ok()));
                black_box(results)
            })
        });
    }
    g.finish();
}

fn bench_concurrency(c: &mut Criterion) {
    bench_scale(c, 1000);
    bench_scale(c, 4000);
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
