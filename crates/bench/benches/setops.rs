//! Full-graph set operations (§A.5): UNION / INTERSECT / MINUS at the
//! graph level, plus their engine-level composition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcore_ppg::ops;
use gcore_snb::{generate_standalone, SnbConfig};
use std::hint::black_box;

fn bench_graph_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("setops");
    g.sample_size(20);
    for &persons in &[500usize, 1000, 2000] {
        let a = generate_standalone(&SnbConfig::scale(persons)).graph;
        let b = generate_standalone(&SnbConfig::scale(persons).with_seed(7)).graph;
        g.bench_with_input(BenchmarkId::new("union", persons), &persons, |bench, _| {
            bench.iter(|| black_box(ops::union(&a, &b)))
        });
        g.bench_with_input(
            BenchmarkId::new("intersect", persons),
            &persons,
            |bench, _| bench.iter(|| black_box(ops::intersect(&a, &b))),
        );
        g.bench_with_input(
            BenchmarkId::new("difference", persons),
            &persons,
            |bench, _| bench.iter(|| black_box(ops::difference(&a, &b))),
        );
    }
    g.finish();
}

fn bench_query_level_setops(c: &mut Criterion) {
    let mut engine = gcore_bench::snb_engine(1000);
    let mut g = c.benchmark_group("setops");
    g.sample_size(15);
    g.bench_function("query_union_minus", |b| {
        b.iter(|| {
            black_box(
                engine
                    .query_graph(
                        "CONSTRUCT (n) MATCH (n:Person) \
                         MINUS \
                         CONSTRUCT (n) MATCH (n:Person) WHERE 'Acme' IN n.employer",
                    )
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_graph_ops, bench_query_level_setops);
criterion_main!(benches);
