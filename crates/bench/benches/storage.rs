//! Storage throughput and cold-start latency: the `gcore-store` binary
//! format and `DirBackend` at SNB scales 1000 and 4000.
//!
//! Groups per scale (`storage_snb{1000,4000}`):
//!
//! * `encode` / `decode` — the binary format alone, in memory (the
//!   CPU cost of a save/load with I/O factored out).
//! * `save_dir` / `load_dir` — `Engine::save_to` / `Engine::open_from`
//!   against a `DirBackend` under the OS temp directory (format +
//!   atomic-rename filesystem round trip; `load_dir` includes
//!   label-index rebuild and identifier-space reservation).
//! * `cold_start_query` — the end-to-end restart story: open the
//!   engine from disk *and* answer one reachability query on it, i.e.
//!   the time from "process starts with nothing" to "first query
//!   served".
//!
//! The graph-size numbers printed once per scale (bytes per element)
//! contextualize throughput readings in docs/BENCHMARKING.md.

use criterion::{criterion_group, criterion_main, Criterion};
use gcore_bench::snb_engine;
use gcore_store::{decode_graph, encode_graph, DirBackend};
use std::hint::black_box;

/// A scratch directory for one bench process, removed on exit of the
/// last bench (best effort — the OS temp dir is self-cleaning anyway).
fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gcore-store-bench-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    dir
}

const COLD_QUERY: &str =
    "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId = 0";

fn bench_scale(c: &mut Criterion, persons: usize) {
    let engine = snb_engine(persons);
    let graph = engine.graph("snb").expect("snb graph");
    let bytes = encode_graph(&graph).expect("encodes");
    println!(
        "storage_snb{persons}: {} nodes, {} edges -> {} bytes ({:.1} B/element)",
        graph.node_count(),
        graph.edge_count(),
        bytes.len(),
        bytes.len() as f64 / (graph.node_count() + graph.edge_count()) as f64
    );

    let mut g = c.benchmark_group(format!("storage_snb{persons}"));
    g.sample_size(10);

    g.bench_function("encode", |b| {
        b.iter(|| black_box(encode_graph(black_box(&graph)).unwrap()))
    });
    g.bench_function("decode", |b| {
        b.iter(|| black_box(decode_graph(black_box(&bytes)).unwrap()))
    });

    let dir = bench_dir(&persons.to_string());
    let backend = DirBackend::new(&dir).expect("backend");
    g.bench_function("save_dir", |b| {
        b.iter(|| engine.save_to(black_box(&backend)).unwrap())
    });
    engine.save_to(&backend).expect("seed store for loads");
    g.bench_function("load_dir", |b| {
        b.iter(|| black_box(gcore::Engine::open_from(black_box(&backend)).unwrap()))
    });
    g.bench_function("cold_start_query", |b| {
        b.iter(|| {
            let mut cold = gcore::Engine::open_from(&backend).unwrap();
            black_box(cold.query_graph(COLD_QUERY).unwrap())
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_storage(c: &mut Criterion) {
    bench_scale(c, 1000);
    bench_scale(c, 4000);
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
