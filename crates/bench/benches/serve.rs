//! Closed-loop load generation against a real `gcore-serve` server:
//! N client threads, each with its own TCP connection, issue a mixed
//! read workload (scans, joins, OPTIONAL, reachability, shortest
//! paths, §5 SELECTs) plus occasional writes against an SNB-1000
//! engine, as fast as the server answers.
//!
//! Two kinds of readings:
//!
//! * criterion groups `serve_rpc` (single-statement round-trip latency
//!   over TCP, per statement class — the protocol + codec overhead on
//!   top of the engine) and `serve_closed_loop` (whole mixed corpus,
//!   once per client count);
//! * a one-shot throughput/percentile run printed to stdout
//!   (statements/s, p50/p95/p99 latency per client count) — those are
//!   the numbers recorded in docs/BENCHMARKING.md.
//!
//! Single-core caveat: this container pins everything to one core, so
//! client threads and server workers time-share; multi-client numbers
//! measure multiplexing overhead, not parallel speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use gcore_bench::snb_engine;
use gcore_serve::{Client, ServeConfig, Server, ServerHandle};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The mixed read corpus (same spread as the in-process concurrency
/// bench, so serve numbers are comparable with engine numbers).
const READS: &[&str] = &[
    "CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 50",
    "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) WHERE n.personId < 50",
    "CONSTRUCT (n)-[:fof]->(k) \
     MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) WHERE n.personId < 10",
    "SELECT n.personId AS id, n.firstName AS name MATCH (n:Person) WHERE n.personId < 300",
    "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId = 0",
    "CONSTRUCT (n)-/@p:sp/->(m) \
     MATCH (n:Person)-/p <:knows*>/->(m:Person) WHERE n.personId = 1",
    "CONSTRUCT (t) MATCH (n:Person)-[:hasInterest]->(t:Tag) WHERE n.personId < 150",
    "SELECT m.firstName AS friend MATCH (n:Person)-[:knows]->(m:Person) WHERE n.personId < 80",
];

/// One write per round per client, made unique by (client, round) so
/// views never collide and every commit really mutates the catalog.
fn write_stmt(client: usize, round: usize) -> String {
    format!(
        "GRAPH VIEW bench_c{client}_r{round} AS \
         (CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 10)"
    )
}

fn start_server(clients: usize) -> ServerHandle {
    let config = ServeConfig {
        threads: clients.max(2),
        max_connections: clients + 2,
        ..ServeConfig::default()
    };
    Server::start(snb_engine(1000), config).expect("bench server boots")
}

/// Closed loop: every client thread hammers the mixed corpus `rounds`
/// times (READS.len() queries + 1 write per round), recording each
/// statement's round-trip latency. Returns all latencies.
fn closed_loop(addr: std::net::SocketAddr, clients: usize, rounds: usize) -> Vec<Duration> {
    let threads: Vec<_> = (0..clients)
        .map(|ci| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("bench client connects");
                let mut latencies = Vec::with_capacity(rounds * (READS.len() + 1));
                for round in 0..rounds {
                    for text in READS {
                        let t0 = Instant::now();
                        client.query(text).expect("read answers");
                        latencies.push(t0.elapsed());
                    }
                    let write = write_stmt(ci, round);
                    let t0 = Instant::now();
                    client.transact(&write).expect("write commits");
                    latencies.push(t0.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::new();
    for t in threads {
        all.extend(t.join().expect("bench client thread"));
    }
    all
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let ix = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[ix]
}

/// The one-shot throughput/percentile table for BENCHMARKING.md.
fn report_throughput() {
    println!("serve closed-loop (SNB-1000, mixed reads + writes):");
    for clients in [1usize, 2, 4] {
        let server = start_server(clients);
        let addr = server.addr();
        // Warm the snapshot and caches once.
        closed_loop(addr, 1, 1);
        let rounds = 3;
        let t0 = Instant::now();
        let mut latencies = closed_loop(addr, clients, rounds);
        let wall = t0.elapsed();
        latencies.sort();
        let statements = latencies.len();
        println!(
            "  {clients} client(s): {statements} stmts in {:.2}s -> {:.1} stmt/s, \
             p50 {:.2?} p95 {:.2?} p99 {:.2?}",
            wall.as_secs_f64(),
            statements as f64 / wall.as_secs_f64(),
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.95),
            percentile(&latencies, 0.99),
        );
        server.wait();
    }
}

/// The abandoned-worker scenario, quantified: every round each client
/// fires a pathological statement that only the cooperative timeout
/// can end, then a fast read on the same connection. The fast-read
/// latencies measure how promptly workers come back from a cancelled
/// statement; the server-side per-route histogram cross-checks the
/// client-side numbers.
fn report_timeout_mix() {
    // Triple cross product over 1000 Persons: ~10^9 candidate rows,
    // astronomically more than a 5 ms budget — it never completes, it
    // is always cancelled.
    const SLOW: &str = "SELECT COUNT(*) AS c \
                        MATCH (a:Person), (b:Person), (c:Person)";
    const CLIENTS: usize = 2;
    const ROUNDS: usize = 5;
    let server = start_server(CLIENTS);
    let addr = server.addr();
    closed_loop(addr, 1, 1); // warm the snapshot and caches
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("bench client connects");
                let mut fast = Vec::with_capacity(ROUNDS);
                for _ in 0..ROUNDS {
                    client.set_statement_timeout_ms(5).expect("set timeout");
                    client
                        .query(SLOW)
                        .expect_err("the pathological statement must be cut off");
                    client.set_statement_timeout_ms(0).expect("clear timeout");
                    let t0 = Instant::now();
                    client.query(READS[3]).expect("fast read answers");
                    fast.push(t0.elapsed());
                }
                fast
            })
        })
        .collect();
    let mut fast: Vec<Duration> = Vec::new();
    for t in threads {
        fast.extend(t.join().expect("timeout-mix client thread"));
    }
    fast.sort();
    let stats = server.stats();
    println!(
        "serve timeout mix (SNB-1000, {CLIENTS} clients x {ROUNDS} rounds, 5ms budget): \
         {} statements cancelled, fast-read-after-cancel p50 {:.2?} p95 {:.2?}, \
         server-side query p95 <= {:?}us",
        stats.statements_cancelled,
        percentile(&fast, 0.50),
        percentile(&fast, 0.95),
        stats.latency_query.quantile_upper_us(0.95).unwrap_or(0),
    );
    server.wait();
}

fn bench_serve(c: &mut Criterion) {
    report_throughput();
    report_timeout_mix();

    // Per-statement-class round-trip latency over TCP, one client.
    {
        let server = start_server(1);
        let mut client = Client::connect(server.addr()).expect("bench client");
        let mut g = c.benchmark_group("serve_rpc");
        g.sample_size(10);
        g.bench_function("ping", |b| b.iter(|| black_box(client.ping().unwrap())));
        g.bench_function("scan_select", |b| {
            b.iter(|| black_box(client.query(READS[3]).unwrap()))
        });
        g.bench_function("join_construct", |b| {
            b.iter(|| black_box(client.query(READS[1]).unwrap()))
        });
        g.bench_function("reachability", |b| {
            b.iter(|| black_box(client.query(READS[4]).unwrap()))
        });
        g.finish();
        drop(client);
        server.wait();
    }

    // Whole mixed corpus, closed loop, per client count.
    let mut g = c.benchmark_group("serve_closed_loop");
    g.sample_size(10);
    for clients in [1usize, 2, 4] {
        let server = start_server(clients);
        let addr = server.addr();
        closed_loop(addr, 1, 1); // warm-up
        g.bench_function(format!("mixed_{clients}c"), |b| {
            b.iter(|| black_box(closed_loop(addr, clients, 1)))
        });
        server.wait();
    }
    g.finish();

    // The same mixed load with the slow-query log armed at threshold 0:
    // every query is profiled and logged — the worst-case observability
    // overhead on the serving path, to compare against `mixed_2c`.
    let mut g = c.benchmark_group("serve_observability");
    g.sample_size(10);
    {
        const CLIENTS: usize = 2;
        let config = ServeConfig {
            threads: CLIENTS.max(2),
            max_connections: CLIENTS + 2,
            slow_threshold: Some(Duration::ZERO),
            ..ServeConfig::default()
        };
        let server = Server::start(snb_engine(1000), config).expect("bench server boots");
        let addr = server.addr();
        closed_loop(addr, 1, 1); // warm-up
        g.bench_function("mixed_2c_slowlog", |b| {
            b.iter(|| black_box(closed_loop(addr, CLIENTS, 1)))
        });
        server.wait();
    }
    g.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
