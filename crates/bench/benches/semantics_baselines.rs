//! The §6 evaluation-semantics contrast, measured (experiment E9):
//! G-CORE's shortest-walk semantics stays linear on graphs where
//! Cypher-9-style no-repeated-edge (trail) and simple-path enumeration
//! blow up combinatorially — the blow-up the paper cites when arguing
//! for arbitrary-walk shortest semantics ([23] is NP-complete for
//! simple paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcore::baselines::{shortest_walks, simple_paths, trails};
use gcore_ppg::{Attributes, GraphBuilder, Label, NodeId, PathPropertyGraph};
use std::hint::black_box;

/// k diamonds in a row: 2^k simple paths end-to-end, 3k+1 nodes.
fn diamond_chain(k: usize) -> (PathPropertyGraph, NodeId, NodeId) {
    let mut b = GraphBuilder::standalone();
    let mut hub = b.node(Attributes::new());
    let first = hub;
    for _ in 0..k {
        let up = b.node(Attributes::new());
        let down = b.node(Attributes::new());
        let next = b.node(Attributes::new());
        for (s, d) in [(hub, up), (hub, down), (up, next), (down, next)] {
            b.edge(s, d, Attributes::labeled("e"));
        }
        hub = next;
    }
    (b.build(), first, hub)
}

fn bench_semantics(c: &mut Criterion) {
    let label = Label::new("e");
    let mut g = c.benchmark_group("semantics");
    g.sample_size(10);
    for k in [4usize, 8, 12, 16] {
        let (graph, src, dst) = diamond_chain(k);
        g.bench_with_input(BenchmarkId::new("gcore_shortest_walk", k), &k, |b, _| {
            b.iter(|| black_box(shortest_walks(&graph, src, label)))
        });
        g.bench_with_input(BenchmarkId::new("cypher9_trails", k), &k, |b, _| {
            b.iter(|| black_box(trails(&graph, src, dst, label, u64::MAX)))
        });
        g.bench_with_input(BenchmarkId::new("simple_paths_np", k), &k, |b, _| {
            b.iter(|| black_box(simple_paths(&graph, src, dst, label, u64::MAX)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_semantics);
criterion_main!(benches);
