//! Planner cost/benefit: the same queries evaluated with the cost-based
//! planner on vs off (syntactic order), and intra-query parallelism at
//! 1/2/4 worker threads, at SNB scales 1000 and 4000.
//!
//! `value_join` is the headline case from the ROADMAP: its two patterns
//! share no structural variable, so syntactic evaluation builds the
//! full cross product and filters `e IN b.employer` afterwards, while
//! the planner pushes the IN conjunct into the second pattern (turning
//! it into a binding form) and joins on `e`. `value_join_pessimal`
//! additionally writes the broad pattern first, so the planner must
//! also reorder. The thread sweeps measure `BindingTable::join_parallel`
//! on a wide two-hop join and parallel multi-source reachability; on a
//! single-core container (`nproc` = 1) they collapse to the sequential
//! path and should read as noise around 1×.
//!
//! Results are identical under every configuration — pinned by
//! `crates/core/tests/planner_equivalence.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use gcore_bench::snb_engine;
use std::hint::black_box;

/// The benchmark suite's value join (matching.rs), selective pattern
/// written first.
const VALUE_JOIN: &str = "CONSTRUCT (a)-[:colleague]->(b) \
     MATCH (a:Person {employer = e}), (b:Person) \
     WHERE e IN b.employer AND a.personId < 40";

/// The same join with a pessimal syntactic order: the broad unfiltered
/// pattern first, the selective binding pattern last.
const VALUE_JOIN_PESSIMAL: &str = "CONSTRUCT (b)<-[:colleague]-(a) \
     MATCH (b:Person), (a:Person {employer = e}) \
     WHERE e IN b.employer AND a.personId < 40";

/// Wide two-hop join whose intermediate exceeds the parallel-join
/// threshold (every knows edge on the probe side).
const TWO_HOP_WIDE: &str = "CONSTRUCT (n)-[:fof]->(k) \
     MATCH (n:Person)-[:knows]->(m:Person), (m)-[:knows]->(k:Person)";

/// Multi-source reachability: enough sources to trigger the partitioned
/// shared-frontier search.
const REACH_MANY: &str = "CONSTRUCT (m) \
     MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId < 500";

fn bench_plan(c: &mut Criterion, persons: usize) {
    let mut engine = snb_engine(persons);
    let mut g = c.benchmark_group(format!("plan_snb{persons}"));
    g.sample_size(10);

    for (name, query) in [
        ("value_join", VALUE_JOIN),
        ("value_join_pessimal", VALUE_JOIN_PESSIMAL),
    ] {
        for (mode, planner) in [("syntactic", false), ("planned", true)] {
            engine.set_planner(planner);
            g.bench_function(format!("{name}_{mode}"), |b| {
                b.iter(|| black_box(engine.query_graph(query).unwrap()))
            });
        }
    }

    // The thread sweep runs at scale 1000 only: one two_hop_wide
    // iteration at SNB-4000 costs ~9 s on a single core, which buys
    // three more minutes of wall clock per run without adding signal —
    // scaling is a multi-core property either way (PR 4 convention).
    if persons <= 1000 {
        engine.set_planner(true);
        for threads in [1usize, 2, 4] {
            engine.set_parallelism(threads);
            g.bench_function(format!("two_hop_wide_{threads}t"), |b| {
                b.iter(|| black_box(engine.query_graph(TWO_HOP_WIDE).unwrap()))
            });
            g.bench_function(format!("reach_many_{threads}t"), |b| {
                b.iter(|| black_box(engine.query_graph(REACH_MANY).unwrap()))
            });
        }
        engine.set_parallelism(1);
    }
    g.finish();
}

fn bench_scales(c: &mut Criterion) {
    bench_plan(c, 1000);
    bench_plan(c, 4000);
}

criterion_group!(benches, bench_scales);
criterion_main!(benches);
