//! Ablation: the WHERE-conjunct pushdown called out in DESIGN.md.
//!
//! With pushdown on, a source-rooted path query explores from one node;
//! with pushdown off, the matcher evaluates the path pattern for every
//! candidate source and the WHERE filters afterwards — same results
//! (asserted here), very different cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcore_bench::snb_engine;
use std::hint::black_box;

const SOURCE_ROOTED: &str = "CONSTRUCT (n)-/@p:sp/->(m) \
     MATCH (n:Person)-/p <:knows*>/->(m:Person) \
     WHERE n.personId = 0";

const FILTERED_SCAN: &str = "CONSTRUCT (n)-[e]->(m) \
     MATCH (n:Person)-[e:knows]->(m:Person) \
     WHERE n.personId < 16 AND m.personId < 64";

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/filter_pushdown");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    let persons = 250usize;

    let mut on = snb_engine(persons);
    let mut off = snb_engine(persons);
    off.set_filter_pushdown(false);

    // The optimization is semantics-preserving.
    assert_eq!(
        on.query_graph(SOURCE_ROOTED).unwrap(),
        off.query_graph(SOURCE_ROOTED).unwrap()
    );
    assert_eq!(
        on.query_graph(FILTERED_SCAN).unwrap(),
        off.query_graph(FILTERED_SCAN).unwrap()
    );

    g.bench_with_input(BenchmarkId::new("paths/on", persons), &persons, |b, _| {
        b.iter(|| black_box(on.query_graph(SOURCE_ROOTED).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("paths/off", persons), &persons, |b, _| {
        b.iter(|| black_box(off.query_graph(SOURCE_ROOTED).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("scan/on", persons), &persons, |b, _| {
        b.iter(|| black_box(on.query_graph(FILTERED_SCAN).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("scan/off", persons), &persons, |b, _| {
        b.iter(|| black_box(off.query_graph(FILTERED_SCAN).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
