//! Runtime drive of the save → restart → query story on a real directory.
use gcore_store::{DirBackend, StorageBackend};

fn main() {
    let dir = std::env::temp_dir().join(format!("gcore-drive-{}", std::process::id()));
    let backend = DirBackend::new(&dir).unwrap();

    // "Process 1": build the guided-tour engine, commit a view, save.
    let mut warm = gcore_bench::tour_engine();
    warm.run("GRAPH VIEW wagner_fans AS (CONSTRUCT (n) MATCH (n:Person)-[:hasInterest]->(:Tag {name = 'Wagner'}))")
        .unwrap();
    warm.save_to(&backend).unwrap();
    let stored: Vec<String> = backend.list().unwrap();
    println!("stored objects: {stored:?}");
    let warm_answer = warm
        .query_table("SELECT n.firstName AS name MATCH (n:Person) ON wagner_fans")
        .unwrap();
    drop(warm);

    // "Process 2": cold start from the directory and serve the same query.
    let mut cold = gcore::Engine::open_from(&DirBackend::new(&dir).unwrap()).unwrap();
    println!("reloaded graphs: {:?}", cold.catalog().graph_names());
    println!("reloaded tables: {:?}", cold.catalog().table_names());
    println!("default graph: {:?}", cold.catalog().default_graph_name());
    let cold_answer = cold
        .query_table("SELECT n.firstName AS name MATCH (n:Person) ON wagner_fans")
        .unwrap();
    assert_eq!(warm_answer.rows(), cold_answer.rows());
    println!("cold answer rows: {:?}", cold_answer.rows());
    std::fs::remove_dir_all(&dir).unwrap();
    println!("SAVE-RESTART-QUERY OK");
}
