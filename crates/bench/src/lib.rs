//! Shared fixtures for the benchmark suite and the `experiments`
//! binary: engines pre-loaded with the paper's toy datasets and with
//! generated SNB networks at the benchmark scales.

#![forbid(unsafe_code)]
use gcore::Engine;
use gcore_snb::{generate, social_dataset, SnbConfig};

/// The SNB scales (persons) used by every scaling sweep. Node counts
/// are roughly 6× the person count (cities, tags, messages).
pub const SCALES: &[usize] = &[250, 500, 1000, 2000, 4000];

/// An engine loaded with the Figure 2 / Figure 4 toy datasets (same
/// layout as the integration tests).
pub fn tour_engine() -> Engine {
    let mut engine = Engine::new();
    let ids = engine.catalog().ids().clone();
    let d = social_dataset(&ids);
    let fig2 = gcore_snb::figure2(&ids);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", fig2);
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    engine
}

/// An engine with one generated SNB network registered as `snb` (and as
/// the default graph).
pub fn snb_engine(persons: usize) -> Engine {
    let mut engine = Engine::new();
    let data = generate(&SnbConfig::scale(persons), &engine.catalog().ids().clone());
    engine.register_graph("snb", data.graph);
    engine.set_default_graph("snb");
    engine
}

/// The message-annotated view used by the weighted-path benchmarks
/// (social_graph1 at SNB scale). Returns the engine with both graphs.
pub fn snb_engine_with_messages(persons: usize) -> Engine {
    let mut engine = snb_engine(persons);
    engine
        .run(
            "GRAPH VIEW msg_graph AS ( \
               CONSTRUCT snb, (n)-[e]->(m) SET e.nr_messages := COUNT(*) \
               MATCH (n)-[e:knows]->(m) \
               WHERE (n:Person) AND (m:Person) \
               OPTIONAL (n)<-[c1]-(msg1:Post|Comment), \
                        (msg1)-[:reply_of]-(msg2), \
                        (msg2:Post|Comment)-[c2]->(m) \
               WHERE (c1:has_creator) AND (c2:has_creator) )",
        )
        .expect("message view builds");
    engine
}
