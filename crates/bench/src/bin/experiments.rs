//! Regenerate every figure/table artefact of the paper as text.
//!
//! ```sh
//! cargo run --release -p gcore-bench --bin experiments -- --all
//! ```
//!
//! Flags (combine freely): `--fig1 --fig2 --tour --bindings --fig5
//! --table1 --semantics --scaling --all`.

use gcore::baselines::{shortest_walks, simple_paths, trails};
use gcore_bench::tour_engine;
use gcore_ppg::{to_text, Attributes, GraphBuilder, Key, Label, NodeId, PathPropertyGraph, Value};
use gcore_repro::corpus;
use gcore_repro::features::{detect, TABLE1};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f || a == "--all");
    if args.is_empty() {
        eprintln!(
            "usage: experiments [--fig1] [--fig2] [--tour] [--bindings] \
             [--fig5] [--table1] [--semantics] [--scaling] [--all]"
        );
        std::process::exit(2);
    }
    if has("--fig2") {
        fig2();
    }
    if has("--fig1") {
        fig1();
    }
    if has("--bindings") {
        bindings();
    }
    if has("--tour") {
        tour();
    }
    if has("--fig5") {
        fig5();
    }
    if has("--table1") {
        table1();
    }
    if has("--semantics") {
        semantics();
    }
    if has("--scaling") {
        scaling();
    }
}

fn banner(title: &str) {
    println!("\n======================================================================");
    println!("{title}");
    println!("======================================================================");
}

/// Figure 2 / Example 2.2: the toy PPG with its literal identifiers.
fn fig2() {
    banner("Figure 2 / Example 2.2 — the Path Property Graph model");
    let engine = tour_engine();
    let g = engine.graph("figure2").unwrap();
    println!("{}", to_text(&g));
    let p = g.path(gcore_ppg::PathId(301)).unwrap();
    println!("delta(301)  = {:?}", p.shape.interleaved());
    println!(
        "nodes(301)  = {:?}",
        p.shape.nodes().iter().map(|n| n.raw()).collect::<Vec<_>>()
    );
    println!(
        "edges(301)  = {:?}",
        p.shape.edges().iter().map(|e| e.raw()).collect::<Vec<_>>()
    );
    println!(
        "lambda(301) = {:?}, sigma(301, trust) = {}",
        g.labels(gcore_ppg::PathId(301).into()).names(),
        g.prop(gcore_ppg::PathId(301).into(), Key::new("trust"))
    );
}

/// Figure 1 (recast): the five feature families of the TUC use-case
/// analysis, with the corpus queries that exercise each.
fn fig1() {
    banner("Figure 1 (recast) — feature families covered by the query corpus");
    use gcore_repro::features::Feature;
    let families: &[(&str, &[Feature])] = &[
        (
            "graph reachability",
            &[Feature::Reachability, Feature::KShortestPaths],
        ),
        ("graph construction", &[Feature::GraphConstruction]),
        ("pattern matching", &[Feature::HomomorphicMatching]),
        (
            "shortest path search",
            &[
                Feature::KShortestPaths,
                Feature::WeightedShortestPaths,
                Feature::QueriesOnPaths,
            ],
        ),
        (
            "graph clustering / aggregation",
            &[Feature::GraphAggregation],
        ),
    ];
    println!("{:<34} {:>7}   queries", "feature family", "covered");
    for (family, feats) in families {
        let covering: Vec<&str> = corpus::ALL
            .iter()
            .filter(|q| {
                let d = detect(&gcore_parser::parse_statement(q.text).unwrap());
                feats.iter().any(|f| d.contains(f))
            })
            .map(|q| q.id)
            .collect();
        println!(
            "{:<34} {:>7}   {}",
            family,
            covering.len(),
            covering.join(", ")
        );
    }
}

/// The §3 binding tables: the 3-row equi-join, the 20-row Cartesian
/// product and the 5-row unrolled table, printed as in the paper.
fn bindings() {
    banner("Section 3 — binding tables");
    let mut engine = tour_engine();

    let print_table = |t: &gcore_ppg::Table| {
        let widths: Vec<usize> = t
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                t.rows()
                    .iter()
                    .map(|r| r[i].to_string().len())
                    .chain([c.len()])
                    .max()
                    .unwrap_or(4)
            })
            .collect();
        for (c, w) in t.columns().iter().zip(&widths) {
            print!("{c:<w$}  ");
        }
        println!();
        for row in t.rows() {
            for (v, w) in row.iter().zip(&widths) {
                print!("{:<w$}  ", v.to_string());
            }
            println!();
        }
    };

    println!("-- equi-join (c.name = n.employer): 3 bindings --");
    let t = engine
        .query_table(
            "SELECT c AS c, n AS n \
             MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
             WHERE c.name = n.employer",
        )
        .unwrap();
    print_table(&t);

    println!("\n-- Cartesian product (WHERE omitted): 20 bindings --");
    let t = engine
        .query_table(
            "SELECT c AS c, c.name AS cname, n AS n, n.employer AS employer \
             MATCH (c:Company) ON company_graph, (n:Person) ON social_graph",
        )
        .unwrap();
    print_table(&t);

    println!("\n-- unrolled multi-valued employer ({{employer = e}}): 5 bindings --");
    let t = engine
        .query_table(
            "SELECT c AS c, n AS n, e AS e \
             MATCH (c:Company) ON company_graph, \
                   (n:Person {employer = e}) ON social_graph \
             WHERE c.name = e",
        )
        .unwrap();
    print_table(&t);
}

/// Run the whole guided tour in paper order, summarizing each result.
fn tour() {
    banner("Section 3 — the guided tour, query by query");
    let mut engine = tour_engine();
    for q in corpus::ALL {
        let t0 = Instant::now();
        match engine.run(q.text) {
            Ok(gcore::QueryOutput::Graph(g)) => println!(
                "lines {:>2}-{:<2} {:<18} -> graph: {:>3} nodes, {:>3} edges, {} paths   ({:?})",
                q.first_line,
                q.last_line,
                q.id,
                g.node_count(),
                g.edge_count(),
                g.path_count(),
                t0.elapsed()
            ),
            Ok(gcore::QueryOutput::Table(t)) => println!(
                "lines {:>2}-{:<2} {:<18} -> table: {:>3} rows x {} cols              ({:?})",
                q.first_line,
                q.last_line,
                q.id,
                t.len(),
                t.columns().len(),
                t0.elapsed()
            ),
            Err(e) => println!(
                "lines {:>2}-{:<2} {:<18} -> ERROR {e}",
                q.first_line, q.last_line, q.id
            ),
        }
    }
}

/// Figure 5: social_graph1's nr_messages and social_graph2's stored
/// :toWagner paths, plus the final wagnerFriend scoring.
fn fig5() {
    banner("Figure 5 — social_graph1, social_graph2 and the wagnerFriend score");
    let mut engine = tour_engine();
    engine.run(corpus::SOCIAL_GRAPH1.text).unwrap();
    engine.run(corpus::SOCIAL_GRAPH2.text).unwrap();

    let g1 = engine.graph("social_graph1").unwrap();
    println!("-- nr_messages per knows edge (social_graph1) --");
    let name = |g: &PathPropertyGraph, n: NodeId| {
        g.prop(n.into(), Key::new("firstName"))
            .as_singleton()
            .map(|v| v.to_string())
            .unwrap_or_default()
    };
    for e in g1.edges_with_label(Label::new("knows")) {
        let (s, t) = g1.endpoints(e).unwrap();
        println!(
            "  {:<7} -> {:<7} nr_messages = {}",
            name(&g1, s),
            name(&g1, t),
            g1.prop(e.into(), Key::new("nr_messages"))
        );
    }

    let g2 = engine.graph("social_graph2").unwrap();
    println!("\n-- stored :toWagner paths (social_graph2) --");
    for p in g2.paths_with_label(Label::new("toWagner")) {
        let shape = &g2.path(p).unwrap().shape;
        let names: Vec<String> = shape.nodes().iter().map(|&n| name(&g2, n)).collect();
        println!("  {p}: {}", names.join(" -> "));
    }

    let result = engine.query_graph(corpus::WAGNER_FRIEND.text).unwrap();
    println!("\n-- wagnerFriend edges (lines 67-71) --");
    for e in result.edges_with_label(Label::new("wagnerFriend")) {
        let (s, t) = result.endpoints(e).unwrap();
        println!(
            "  {} -> {} with score = {}",
            name(&result, s),
            name(&result, t),
            result.prop(e.into(), Key::new("score"))
        );
    }
}

/// Table 1: the feature × line matrix, with detector confirmation.
fn table1() {
    banner("Table 1 — G-CORE features and their line occurrences");
    let detected: Vec<_> = corpus::ALL
        .iter()
        .map(|q| (q, detect(&gcore_parser::parse_statement(q.text).unwrap())))
        .collect();
    println!("{:<55} {:<28} detected", "feature", "paper lines");
    for (feature, lines) in TABLE1 {
        let occ = match lines {
            None => "*".to_owned(),
            Some(ls) => ls.iter().map(u32::to_string).collect::<Vec<_>>().join(", "),
        };
        let confirmed = match lines {
            None => detected.iter().filter(|(_, d)| d.contains(feature)).count(),
            Some(ls) => ls
                .iter()
                .filter(|&&l| {
                    corpus::query_at_line(l)
                        .and_then(|q| {
                            detected
                                .iter()
                                .find(|(cq, _)| cq.id == q.id)
                                .map(|(_, d)| d.contains(feature))
                        })
                        .unwrap_or(false)
                })
                .count(),
        };
        let total = match lines {
            None => detected.len(),
            Some(ls) => ls.len(),
        };
        println!("{feature:<55} {occ:<28} {confirmed}/{total}");
    }
}

/// The §6 semantics contrast on diamond-chain graphs.
fn semantics() {
    banner("Section 6 — evaluation-semantics contrast (expansions, k diamonds)");
    println!(
        "{:>3}  {:>14}  {:>14}  {:>16}  {:>12}",
        "k", "shortest-walk", "trails(Cy9)", "simple(NP-hard)", "simple paths"
    );
    for k in [2usize, 4, 6, 8, 10, 12, 14, 16] {
        let (g, src, dst) = diamond_chain(k);
        let label = Label::new("e");
        let w = shortest_walks(&g, src, label);
        let t = trails(&g, src, dst, label, u64::MAX);
        let s = simple_paths(&g, src, dst, label, u64::MAX);
        println!(
            "{k:>3}  {:>14}  {:>14}  {:>16}  {:>12}",
            w.expansions, t.expansions, s.expansions, s.paths
        );
    }
    println!("(shortest-walk grows linearly in k; both enumerations double per diamond)");
}

fn diamond_chain(k: usize) -> (PathPropertyGraph, NodeId, NodeId) {
    let mut b = GraphBuilder::standalone();
    let mut hub = b.node(Attributes::new());
    let first = hub;
    for _ in 0..k {
        let up = b.node(Attributes::new());
        let down = b.node(Attributes::new());
        let next = b.node(Attributes::new());
        for (s, d) in [(hub, up), (hub, down), (up, next), (down, next)] {
            b.edge(s, d, Attributes::labeled("e"));
        }
        hub = next;
    }
    (b.build(), first, hub)
}

/// The §4 tractability sweep, as a quick wall-clock table (criterion
/// benches produce the rigorous numbers; this prints the shape).
fn scaling() {
    banner("Section 4 — data-complexity sweep (fixed queries, growing graphs)");
    let queries: &[(&str, &str)] = &[
        (
            "pattern_match",
            "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) \
             WHERE n.personId < 32",
        ),
        (
            "reachability",
            "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId = 0",
        ),
        (
            "shortest_paths",
            "CONSTRUCT (n)-/@p:sp/->(m) MATCH (n:Person)-/p <:knows*>/->(m:Person) \
             WHERE n.personId = 0",
        ),
        (
            "construct_agg",
            "CONSTRUCT (t)<-[e:pop]-(n) SET e.cnt := COUNT(*) \
             MATCH (n:Person)-[:hasInterest]->(t:Tag)",
        ),
    ];
    print!("{:>9}", "persons");
    for (name, _) in queries {
        print!("  {name:>16}");
    }
    println!();
    for &persons in gcore_bench::SCALES {
        let mut engine = gcore_bench::snb_engine(persons);
        print!("{persons:>9}");
        for (_, q) in queries {
            let t0 = Instant::now();
            let out = engine.query_graph(q).unwrap();
            let dt = t0.elapsed();
            let _ = Value::Int(out.node_count() as i64);
            print!("  {:>14.2?}ms", dt.as_secs_f64() * 1e3);
        }
        println!();
    }
    println!("(times should grow polynomially — near-linearly for the path operators)");
}
