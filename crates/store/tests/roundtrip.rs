//! Property tests for the binary graph format and the backends:
//! `decode(encode(g)) == g` on random graphs (unicode labels and
//! strings, every `Value` variant, stored paths referencing edges),
//! writer determinism, and the filesystem backend's behavior under a
//! real directory.

use gcore_ppg::{
    Attributes, Catalog, Date, EdgeId, NodeId, PathId, PathPropertyGraph, PathShape, PropertySet,
    Value,
};
use gcore_store::{
    decode_graph, encode_graph, load_catalog, save_catalog, DirBackend, MemBackend, StorageBackend,
    StoreError,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random graph generation (unicode-heavy on purpose)
// ---------------------------------------------------------------------

const LABELS: [&str; 4] = ["Person", "日本語ラベル", "Ünïcôde-ətag", "p"];
const KEYS: [&str; 3] = ["name", "prix·€", "k2"];
const STRINGS: [&str; 4] = ["", "Ann", "emoji 🦀 and ẞ", "line\nbreak\ttab"];

#[derive(Clone, Debug)]
enum RawValue {
    Bool(bool),
    Int(i64),
    Float(u8), // index into FLOATS
    Str(usize),
    Date(u8), // day offset
}

const FLOATS: [f64; 5] = [0.0, -0.0, 1.5, f64::NEG_INFINITY, f64::NAN];

impl RawValue {
    fn to_value(&self) -> Value {
        match self {
            RawValue::Bool(b) => Value::Bool(*b),
            RawValue::Int(i) => Value::Int(*i),
            RawValue::Float(i) => Value::Float(FLOATS[*i as usize % FLOATS.len()]),
            RawValue::Str(i) => Value::str(STRINGS[*i % STRINGS.len()]),
            RawValue::Date(d) => {
                Value::Date(Date::new(2020, 1 + (*d % 12), 1 + (*d % 28)).unwrap())
            }
        }
    }
}

fn value_strategy() -> impl Strategy<Value = RawValue> {
    prop_oneof![
        (0usize..2).prop_map(|b| RawValue::Bool(b == 1)),
        (-1000i64..1000).prop_map(RawValue::Int),
        (0u64..FLOATS.len() as u64).prop_map(|i| RawValue::Float(i as u8)),
        (0usize..STRINGS.len()).prop_map(RawValue::Str),
        (0u64..28).prop_map(|d| RawValue::Date(d as u8)),
    ]
}

/// One element's attributes: a label mask over `LABELS` and up to three
/// properties, each a value set of up to three values.
type RawAttrs = (usize, Vec<(usize, Vec<RawValue>)>);

fn attrs_strategy() -> impl Strategy<Value = RawAttrs> {
    (
        0usize..(1 << LABELS.len()),
        prop::collection::vec(
            (
                0usize..KEYS.len(),
                prop::collection::vec(value_strategy(), 0..3),
            ),
            0..3,
        ),
    )
}

fn build_attrs(raw: &RawAttrs) -> Attributes {
    let mut attrs = Attributes::new();
    for (i, name) in LABELS.iter().enumerate() {
        if raw.0 & (1 << i) != 0 {
            attrs = attrs.with_label(name);
        }
    }
    for (key_ix, values) in &raw.1 {
        let set = PropertySet::from_values(values.iter().map(RawValue::to_value));
        let merged = attrs.prop(gcore_ppg::Key::new(KEYS[*key_ix])).union(&set);
        attrs.set_prop(gcore_ppg::Key::new(KEYS[*key_ix]), merged);
    }
    attrs
}

#[derive(Clone, Debug)]
struct RawGraph {
    nodes: Vec<RawAttrs>,
    edges: Vec<(usize, usize, RawAttrs)>,
    /// Per edge index: make a 1-edge stored path over it?
    edge_paths: Vec<usize>,
    /// Node indexes carrying a trivial (0-length) stored path.
    trivial_paths: Vec<usize>,
}

fn graph_strategy() -> impl Strategy<Value = RawGraph> {
    (0usize..7).prop_flat_map(|n| {
        let nodes = prop::collection::vec(attrs_strategy(), n..n + 1);
        let edges = if n == 0 {
            prop::collection::vec((0usize..1, 0usize..1, attrs_strategy()), 0..1)
        } else {
            prop::collection::vec((0usize..n, 0usize..n, attrs_strategy()), 0..10)
        };
        let edge_paths = prop::collection::vec(0usize..10, 0..4);
        let trivial_paths = prop::collection::vec(0usize..n.max(1), 0..2);
        (nodes, edges, edge_paths, trivial_paths).prop_map(
            move |(nodes, edges, edge_paths, trivial_paths)| RawGraph {
                nodes: if n == 0 { vec![] } else { nodes },
                edges: if n == 0 { vec![] } else { edges },
                edge_paths,
                trivial_paths,
            },
        )
    })
}

fn build_graph(raw: &RawGraph) -> PathPropertyGraph {
    let mut g = PathPropertyGraph::new();
    for (i, attrs) in raw.nodes.iter().enumerate() {
        g.add_node(NodeId(1 + i as u64), build_attrs(attrs));
    }
    for (i, (s, d, attrs)) in raw.edges.iter().enumerate() {
        g.add_edge(
            EdgeId(100 + i as u64),
            NodeId(1 + *s as u64),
            NodeId(1 + *d as u64),
            build_attrs(attrs),
        )
        .expect("endpoints exist");
    }
    let mut next_path = 1000u64;
    for &ei in &raw.edge_paths {
        if let Some((s, d, _)) = raw.edges.get(ei) {
            let shape = PathShape::new(
                vec![NodeId(1 + *s as u64), NodeId(1 + *d as u64)],
                vec![EdgeId(100 + ei as u64)],
            )
            .unwrap();
            // Identical shapes re-insert fine; distinct ids keep them apart.
            g.add_path(PathId(next_path), shape, Attributes::labeled("route"))
                .expect("path over existing edge");
            next_path += 1;
        }
    }
    for &ni in &raw.trivial_paths {
        if ni < raw.nodes.len() {
            g.add_path(
                PathId(next_path),
                PathShape::trivial(NodeId(1 + ni as u64)),
                Attributes::new().with_prop("why", "trivial"),
            )
            .expect("trivial path over existing node");
            next_path += 1;
        }
    }
    g
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(192)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The round-trip identity, on graphs drawn with unicode labels,
    /// every `Value` variant (including NaN / −0.0 floats), multi-valued
    /// properties and stored paths.
    #[test]
    fn decode_encode_is_identity(raw in graph_strategy()) {
        let g = build_graph(&raw);
        g.validate().expect("generated graph well-formed");
        let bytes = encode_graph(&g).expect("encodes");
        let back = decode_graph(&bytes).expect("decodes");
        back.validate().expect("decoded graph well-formed");
        prop_assert!(back == g, "round-trip changed the graph");
    }

    /// Determinism: encoding the same content twice — and encoding a
    /// structurally equal graph rebuilt from scratch — is byte-identical.
    #[test]
    fn writer_is_deterministic(raw in graph_strategy()) {
        let g = build_graph(&raw);
        let a = encode_graph(&g).unwrap();
        let b = encode_graph(&g).unwrap();
        prop_assert_eq!(&a, &b);
        let rebuilt = build_graph(&raw);
        let c = encode_graph(&rebuilt).unwrap();
        prop_assert_eq!(&a, &c);
        // And decoding then re-encoding reproduces the same bytes.
        let d = encode_graph(&decode_graph(&a).unwrap()).unwrap();
        prop_assert_eq!(&a, &d);
    }

    /// Every single-byte truncation of a valid file is rejected — no
    /// prefix parses.
    #[test]
    fn truncations_never_decode(raw in graph_strategy(), cut in 0usize..4096) {
        let g = build_graph(&raw);
        let bytes = encode_graph(&g).unwrap();
        let cut = cut % bytes.len().max(1);
        prop_assert!(decode_graph(&bytes[..cut]).is_err());
    }

    /// Flipping any single byte of a valid file is detected: either a
    /// structural error or a checksum mismatch — or, for the rare flips
    /// that stay structurally valid (e.g. inside an id that the
    /// checksum guards), the checksum catches it; no flip may silently
    /// yield the original graph's bytes *and* decode to a different
    /// graph undetected.
    #[test]
    fn single_byte_corruption_is_detected(raw in graph_strategy(), at in 0usize..4096, bit in 0u64..8) {
        let g = build_graph(&raw);
        let bytes = encode_graph(&g).unwrap();
        let at = at % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 1 << bit;
        prop_assert!(
            decode_graph(&corrupt).is_err(),
            "flipping bit {bit} of byte {at} went undetected"
        );
    }
}

// ---------------------------------------------------------------------
// DirBackend under a real directory
// ---------------------------------------------------------------------

/// A unique scratch directory removed on drop (std-only tempdir).
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gcore-store-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn people() -> PathPropertyGraph {
    let mut g = PathPropertyGraph::new();
    g.add_node(
        NodeId(1),
        Attributes::labeled("Person").with_prop("name", "Ann"),
    );
    g.add_node(
        NodeId(2),
        Attributes::labeled("Person").with_prop("name", "Bøb"),
    );
    g.add_edge(
        EdgeId(3),
        NodeId(1),
        NodeId(2),
        Attributes::labeled("knows"),
    )
    .unwrap();
    g
}

#[test]
fn dir_backend_round_trips_catalog() {
    let tmp = TempDir::new("catalog");
    let backend = DirBackend::new(&tmp.0).unwrap();

    let mut catalog = Catalog::new();
    catalog.register_graph("people", people());
    catalog.register_graph("graph with spaces/слэш", people());
    // Dotted names must survive DirBackend (leading dots are escaped
    // out of the reserved temp-file namespace).
    catalog.register_graph(".tmp-looking.name", people());
    catalog.set_default_graph("people");
    save_catalog(&catalog, &backend).unwrap();

    // A second backend over the same root sees the same objects (the
    // "restart" case for a filesystem store).
    let reopened = DirBackend::new(&tmp.0).unwrap();
    let loaded = load_catalog(&reopened).unwrap();
    assert_eq!(
        loaded.graph_names(),
        vec![".tmp-looking.name", "graph with spaces/слэш", "people"]
    );
    assert_eq!(loaded.default_graph_name(), Some("people"));
    assert_eq!(*loaded.graph("people").unwrap(), people());
    assert_eq!(*loaded.graph("graph with spaces/слэш").unwrap(), people());
    assert_eq!(*loaded.graph(".tmp-looking.name").unwrap(), people());
}

#[test]
fn dir_backend_lists_and_deletes_like_mem_backend() {
    let tmp = TempDir::new("parity");
    let dir = DirBackend::new(&tmp.0).unwrap();
    let mem = MemBackend::new();
    for backend in [&dir as &dyn StorageBackend, &mem as &dyn StorageBackend] {
        backend.put_bytes("manifest", b"m").unwrap();
        backend.put_graph("g", &people()).unwrap();
        assert_eq!(
            backend.list().unwrap(),
            vec!["graphs/g.gpg".to_owned(), "manifest".to_owned()]
        );
        assert_eq!(backend.get_graph("g").unwrap(), people());
        backend.delete("manifest").unwrap();
        assert!(matches!(
            backend.get_bytes("manifest"),
            Err(StoreError::Missing(_))
        ));
        assert_eq!(backend.list().unwrap(), vec!["graphs/g.gpg".to_owned()]);
    }
}

#[test]
fn dir_backend_overwrite_is_atomic_replacement() {
    let tmp = TempDir::new("overwrite");
    let backend = DirBackend::new(&tmp.0).unwrap();
    backend.put_bytes("graphs/a.gpg", b"old").unwrap();
    backend.put_bytes("graphs/a.gpg", b"new").unwrap();
    assert_eq!(backend.get_bytes("graphs/a.gpg").unwrap(), b"new");
    // No temporary files survive a completed write.
    assert_eq!(backend.list().unwrap(), vec!["graphs/a.gpg".to_owned()]);
}

#[test]
fn dir_backend_rejects_escaping_keys() {
    let tmp = TempDir::new("escape");
    let backend = DirBackend::new(&tmp.0).unwrap();
    for key in ["../evil", "a/../../b", "", "/abs", "a//b", ".tmp-1-1"] {
        assert!(
            backend.put_bytes(key, b"x").is_err(),
            "key '{key}' must be rejected"
        );
    }
}

#[test]
fn corrupted_file_on_disk_is_reported_not_loaded() {
    let tmp = TempDir::new("bitrot");
    let backend = DirBackend::new(&tmp.0).unwrap();
    let mut catalog = Catalog::new();
    catalog.register_graph("g", people());
    save_catalog(&catalog, &backend).unwrap();

    // Flip one payload byte of the stored graph file behind the
    // backend's back (simulated bit rot).
    let path = tmp.0.join("graphs").join("g.gpg");
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() - 10; // inside the paths-section envelope
    bytes[at] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    assert!(load_catalog(&backend).is_err());
}
