//! # gcore-store — durable snapshot storage
//!
//! Everything the G-CORE engine evaluates lives in memory; this crate is
//! the persistence seam named in the ROADMAP. It provides three layers,
//! std-only and dependency-free:
//!
//! * **A binary graph format** ([`mod@format`]): a versioned,
//!   length-prefixed encoding of one
//!   [`PathPropertyGraph`](gcore_ppg::PathPropertyGraph) — header with
//!   magic/version/counts, the interned label/key symbol table written
//!   once, then node/edge/path sections, each integrity-checked by an
//!   FNV-1a checksum. The writer is **deterministic**: identical graphs
//!   produce byte-identical files, in any process, because symbols are
//!   written sorted by name and elements in the canonical order of
//!   [`gcore_ppg::sorted_elements`].
//! * **Pluggable storage backends** ([`backend`]): the object-store
//!   shaped [`StorageBackend`] trait (named blobs in, named blobs out)
//!   with two implementations — [`MemBackend`] for tests and staging,
//!   and [`DirBackend`], one file per object under a root directory
//!   with atomic write-via-rename.
//! * **Catalog persistence** ([`catalog_io`]): [`save_catalog`] /
//!   [`load_catalog`] round-trip every registered graph and table plus
//!   the default-graph name through a small manifest object, so a
//!   process can restart and serve the same queries cold
//!   (`Engine::save_to` / `Engine::open_from` in `gcore` wrap these).
//!
//! ## Quick example
//!
//! ```
//! use gcore_ppg::{Attributes, Catalog, NodeId, PathPropertyGraph};
//! use gcore_store::{load_catalog, save_catalog, MemBackend};
//!
//! let mut catalog = Catalog::new();
//! let mut g = PathPropertyGraph::new();
//! g.add_node(NodeId(1), Attributes::labeled("Person").with_prop("name", "Ann"));
//! catalog.register_graph("people", g);
//! catalog.set_default_graph("people");
//!
//! let backend = MemBackend::new();
//! save_catalog(&catalog, &backend).unwrap();
//!
//! // …process restarts…
//! let reloaded = load_catalog(&backend).unwrap();
//! assert_eq!(reloaded.graph_names(), vec!["people"]);
//! assert_eq!(reloaded.default_graph_name(), Some("people"));
//! assert_eq!(reloaded.graph("people").unwrap().node_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod catalog_io;
pub mod error;
pub mod format;

pub use backend::{DirBackend, MemBackend, StorageBackend};
pub use catalog_io::{
    load_catalog, load_catalog_at_epoch, save_catalog, save_catalog_at_epoch, Manifest,
};
pub use error::StoreError;
pub use format::{
    decode_graph, decode_stats, decode_table, encode_graph, encode_stats, encode_table, fnv1a64,
    FORMAT_VERSION, MAGIC, STATS_MAGIC, TABLE_MAGIC,
};
