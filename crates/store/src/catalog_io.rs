//! Catalog-level persistence: the manifest object plus
//! [`save_catalog`] / [`load_catalog`].
//!
//! The manifest is a tiny checksummed blob recording the set of
//! persisted graph and table names plus the default-graph name; it is
//! written *after* every graph/table object, so a load that finds the
//! manifest finds every object it names (the
//! [`DirBackend`](crate::DirBackend) rename makes each object write
//! atomic, and a crash between objects leaves the previous manifest
//! pointing at the previous, complete set).

use crate::backend::{graph_key, stats_key, table_key, StorageBackend, MANIFEST_KEY};
use crate::error::StoreError;
use crate::format::fnv1a64;
use gcore_ppg::{Catalog, GraphStats};

const MANIFEST_MAGIC: [u8; 8] = *b"GCOREMAN";
const MANIFEST_VERSION: u32 = 2;

/// The decoded manifest: which graphs a store holds and which one is
/// the default.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Manifest {
    /// Sorted names of every persisted graph.
    pub graphs: Vec<String>,
    /// Sorted names of every persisted table (§5 named inputs).
    pub tables: Vec<String>,
    /// The default graph, if one was set when saving.
    pub default_graph: Option<String>,
    /// The saving engine's snapshot epoch (version 2; version-1 stores
    /// decode as 0). Restoring it on load means clients of a restarted
    /// server can never observe the epoch regress.
    pub epoch: u64,
}

impl Manifest {
    /// Serialize: magic, version, then a checksummed payload of the
    /// graph- and table-name lists, the optional default name and the
    /// snapshot epoch.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.graphs.len() as u32).to_le_bytes());
        for name in &self.graphs {
            payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
            payload.extend_from_slice(name.as_bytes());
        }
        payload.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for name in &self.tables {
            payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
            payload.extend_from_slice(name.as_bytes());
        }
        match &self.default_graph {
            Some(name) => {
                payload.push(1);
                payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
                payload.extend_from_slice(name.as_bytes());
            }
            None => payload.push(0),
        }
        payload.extend_from_slice(&self.epoch.to_le_bytes());
        let mut out = Vec::with_capacity(MANIFEST_MAGIC.len() + 12 + payload.len() + 8);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Parse and validate a manifest blob.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, StoreError> {
        let take = |at: usize, n: usize| -> Result<&[u8], StoreError> {
            bytes.get(at..at + n).ok_or(StoreError::Truncated)
        };
        if take(0, 8)? != MANIFEST_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(take(8, 4)?.try_into().unwrap());
        if version == 0 || version > MANIFEST_VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let len = u64::from_le_bytes(take(12, 8)?.try_into().unwrap()) as usize;
        let payload = take(20, len)?;
        let checksum = u64::from_le_bytes(take(20 + len, 8)?.try_into().unwrap());
        if 20 + len + 8 != bytes.len() {
            return Err(StoreError::Corrupt("trailing bytes in manifest".into()));
        }
        if checksum != fnv1a64(payload) {
            return Err(StoreError::ChecksumMismatch {
                section: "manifest",
            });
        }

        let mut pos = 0usize;
        let read_str = |pos: &mut usize| -> Result<String, StoreError> {
            let n = u32::from_le_bytes(
                payload
                    .get(*pos..*pos + 4)
                    .ok_or(StoreError::Truncated)?
                    .try_into()
                    .unwrap(),
            ) as usize;
            *pos += 4;
            let s = payload.get(*pos..*pos + n).ok_or(StoreError::Truncated)?;
            *pos += n;
            String::from_utf8(s.to_vec())
                .map_err(|_| StoreError::Corrupt("manifest name is not UTF-8".into()))
        };
        let count = u32::from_le_bytes(
            payload
                .get(pos..pos + 4)
                .ok_or(StoreError::Truncated)?
                .try_into()
                .unwrap(),
        ) as usize;
        pos += 4;
        let mut graphs = Vec::with_capacity(count);
        for _ in 0..count {
            graphs.push(read_str(&mut pos)?);
        }
        let tcount = u32::from_le_bytes(
            payload
                .get(pos..pos + 4)
                .ok_or(StoreError::Truncated)?
                .try_into()
                .unwrap(),
        ) as usize;
        pos += 4;
        let mut tables = Vec::with_capacity(tcount);
        for _ in 0..tcount {
            tables.push(read_str(&mut pos)?);
        }
        let default_graph = match payload.get(pos).ok_or(StoreError::Truncated)? {
            0 => {
                pos += 1;
                None
            }
            1 => {
                pos += 1;
                Some(read_str(&mut pos)?)
            }
            b => return Err(StoreError::Corrupt(format!("bad default-graph tag {b}"))),
        };
        // Version 1 manifests end here; version 2 appends the epoch.
        let epoch = if version >= 2 {
            let raw = payload.get(pos..pos + 8).ok_or(StoreError::Truncated)?;
            pos += 8;
            u64::from_le_bytes(raw.try_into().unwrap())
        } else {
            0
        };
        if pos != payload.len() {
            return Err(StoreError::Corrupt(
                "trailing bytes in manifest payload".into(),
            ));
        }
        Ok(Manifest {
            graphs,
            tables,
            default_graph,
            epoch,
        })
    }
}

/// [`save_catalog_at_epoch`] with epoch 0, for catalogs that live
/// outside an engine (no commit counter to preserve).
pub fn save_catalog(catalog: &Catalog, backend: &dyn StorageBackend) -> Result<(), StoreError> {
    save_catalog_at_epoch(catalog, 0, backend)
}

/// Persist every graph and table registered in `catalog` (plus the
/// default-graph name and the saving engine's snapshot `epoch`) into
/// `backend`, then write the manifest. Objects that a previous save
/// left behind but that are no longer in the catalog are deleted
/// afterwards, so the store always converges to exactly the catalog's
/// state.
pub fn save_catalog_at_epoch(
    catalog: &Catalog,
    epoch: u64,
    backend: &dyn StorageBackend,
) -> Result<(), StoreError> {
    let names = catalog.graph_names();
    for name in &names {
        let graph = catalog
            .graph(name)
            .expect("graph_names lists registered graphs");
        backend.put_graph(name, &graph)?;
        // Planner statistics ride along as a side object, so a
        // cold-started engine plans identically without recomputing.
        // Computation is deterministic, so recomputing when the cached
        // copy was invalidated yields the same bytes either way.
        match graph.stats() {
            Some(stats) => backend.put_stats(name, stats)?,
            None => backend.put_stats(name, &GraphStats::compute(&graph))?,
        }
    }
    let table_names = catalog.table_names();
    for name in &table_names {
        let table = catalog
            .table(name)
            .expect("table_names lists registered tables");
        backend.put_table(name, &table)?;
    }
    let manifest = Manifest {
        graphs: names.clone(),
        tables: table_names.clone(),
        default_graph: catalog.default_graph_name().map(str::to_owned),
        epoch,
    };
    backend.put_bytes(MANIFEST_KEY, &manifest.encode())?;

    // Garbage-collect objects dropped since the previous save.
    let mut live: Vec<String> = names.iter().map(|n| graph_key(n)).collect();
    live.extend(names.iter().map(|n| stats_key(n)));
    live.extend(table_names.iter().map(|n| table_key(n)));
    for key in backend.list()? {
        if (key.starts_with("graphs/") || key.starts_with("tables/") || key.starts_with("stats/"))
            && !live.contains(&key)
        {
            backend.delete(&key)?;
        }
    }
    Ok(())
}

/// [`load_catalog_at_epoch`] without the stored epoch, for callers
/// that only need the catalog.
pub fn load_catalog(backend: &dyn StorageBackend) -> Result<Catalog, StoreError> {
    Ok(load_catalog_at_epoch(backend)?.0)
}

/// Load a catalog previously written by [`save_catalog_at_epoch`]:
/// read the manifest, decode every named graph and table, register
/// them (which rebuilds label indexes and reserves the stored
/// identifier space in the catalog's generator — skolemized
/// identifiers minted after a cold start can never collide with stored
/// elements), and restore the default graph. Returns the catalog
/// together with the epoch recorded at save time (0 for version-1
/// stores).
pub fn load_catalog_at_epoch(backend: &dyn StorageBackend) -> Result<(Catalog, u64), StoreError> {
    let manifest = Manifest::decode(&backend.get_bytes(MANIFEST_KEY)?)?;
    let mut catalog = Catalog::new();
    for name in &manifest.graphs {
        let mut graph = backend.get_graph(name)?;
        // Stats side objects are advisory: attach when present and
        // readable, otherwise registration recomputes them (the
        // deterministic computation yields the same stats either way —
        // stores written before the stats side object existed load
        // fine).
        if let Ok(stats) = backend.get_stats(name) {
            graph.set_stats(stats);
        }
        catalog.register_graph(name.clone(), graph);
    }
    for name in &manifest.tables {
        let table = backend.get_table(name)?;
        catalog.register_table(name.clone(), table);
    }
    if let Some(default) = &manifest.default_graph {
        if !catalog.has_graph(default) {
            return Err(StoreError::Corrupt(format!(
                "manifest default graph '{default}' is not in the store"
            )));
        }
        catalog.set_default_graph(default.clone());
    }
    Ok((catalog, manifest.epoch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{stats_key, MemBackend};
    use gcore_ppg::{Attributes, EdgeId, NodeId, PathPropertyGraph};

    fn people() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        g.add_node(
            NodeId(1),
            Attributes::labeled("Person").with_prop("name", "Ann"),
        );
        g.add_node(
            NodeId(2),
            Attributes::labeled("Person").with_prop("name", "Bob"),
        );
        g.add_edge(
            EdgeId(3),
            NodeId(1),
            NodeId(2),
            Attributes::labeled("knows"),
        )
        .unwrap();
        g
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            graphs: vec!["a".into(), "ünïcødé".into()],
            tables: vec!["orders".into()],
            default_graph: Some("a".into()),
            epoch: 42,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let none = Manifest {
            graphs: vec![],
            tables: vec![],
            default_graph: None,
            epoch: 0,
        };
        assert_eq!(Manifest::decode(&none.encode()).unwrap(), none);
    }

    #[test]
    fn version_1_manifests_decode_with_epoch_zero() {
        // A version-1 manifest is a version-2 one without the trailing
        // epoch: rebuild those bytes and check graceful decoding.
        let m = Manifest {
            graphs: vec!["a".into()],
            tables: vec![],
            default_graph: Some("a".into()),
            epoch: 7,
        };
        let v2 = m.encode();
        let payload_len = (u64::from_le_bytes(v2[12..20].try_into().unwrap()) - 8) as usize;
        let payload = &v2[20..20 + payload_len]; // epoch bytes dropped
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MANIFEST_MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&(payload_len as u64).to_le_bytes());
        v1.extend_from_slice(payload);
        v1.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        let decoded = Manifest::decode(&v1).unwrap();
        assert_eq!(decoded.graphs, m.graphs);
        assert_eq!(decoded.default_graph, m.default_graph);
        assert_eq!(decoded.epoch, 0);
    }

    #[test]
    fn manifest_corruption_detected() {
        let m = Manifest {
            graphs: vec!["a".into()],
            tables: vec![],
            default_graph: None,
            epoch: 3,
        };
        let clean = m.encode();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            assert!(
                Manifest::decode(&bytes).is_err() || Manifest::decode(&bytes).unwrap() != m,
                "flipping byte {i} went unnoticed"
            );
        }
        assert!(matches!(
            Manifest::decode(&clean[..clean.len() - 1]),
            Err(StoreError::Truncated) | Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn save_load_round_trip_with_default() {
        use gcore_ppg::{Table, Value};

        let mut catalog = Catalog::new();
        catalog.register_graph("people", people());
        catalog.register_graph("empty", PathPropertyGraph::new());
        let mut orders = Table::new(vec!["customer", "total"]).unwrap();
        orders
            .push_row(vec![Value::str("Ann"), Value::Int(3)])
            .unwrap();
        catalog.register_table("orders", orders);
        catalog.set_default_graph("people");

        let backend = MemBackend::new();
        save_catalog(&catalog, &backend).unwrap();
        let loaded = load_catalog(&backend).unwrap();

        assert_eq!(loaded.graph_names(), vec!["empty", "people"]);
        assert_eq!(loaded.table_names(), vec!["orders"]);
        assert_eq!(loaded.default_graph_name(), Some("people"));
        assert_eq!(*loaded.graph("people").unwrap(), people());
        let t = loaded.table("orders").unwrap();
        assert_eq!(t.rows(), catalog.table("orders").unwrap().rows());
        // Registration reserved the identifier space of stored elements.
        assert!(loaded.ids().peek() > 3);
        // Loaded graphs are indexed, like any registered graph.
        assert!(loaded.graph("people").unwrap().has_label_index());
        // Planner stats rode along as side objects — a cold start plans
        // from the same numbers the saving engine did.
        assert!(loaded.graph("people").unwrap().has_stats());
        assert_eq!(
            loaded.graph("people").unwrap().stats(),
            catalog.graph("people").unwrap().stats()
        );
    }

    #[test]
    fn resave_garbage_collects_dropped_graphs() {
        let mut catalog = Catalog::new();
        catalog.register_graph("keep", people());
        catalog.register_graph("drop", people());
        let backend = MemBackend::new();
        save_catalog(&catalog, &backend).unwrap();
        // 2 graphs + 2 stats side objects + manifest.
        assert_eq!(backend.list().unwrap().len(), 5);

        catalog.unregister_graph("drop");
        save_catalog(&catalog, &backend).unwrap();
        assert_eq!(
            backend.list().unwrap(),
            vec![
                graph_key("keep"),
                MANIFEST_KEY.to_owned(),
                stats_key("keep")
            ]
        );
        let loaded = load_catalog(&backend).unwrap();
        assert_eq!(loaded.graph_names(), vec!["keep"]);
    }

    #[test]
    fn missing_manifest_is_a_missing_object() {
        let backend = MemBackend::new();
        assert!(matches!(
            load_catalog(&backend),
            Err(StoreError::Missing(_))
        ));
    }
}
