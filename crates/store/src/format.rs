//! The versioned binary graph format.
//!
//! One file holds one [`PathPropertyGraph`]. Layout (all integers
//! little-endian, strings UTF-8 with a `u32` byte-length prefix):
//!
//! ```text
//! header   magic "GCOREPPG" (8 bytes)
//!          u32 version          — currently 1
//!          u32 label_count      — symbols used by this graph
//!          u32 key_count
//!          u64 node_count
//!          u64 edge_count
//!          u64 path_count
//! sections 4 × { u8 tag, u64 payload_len, payload, u64 fnv1a64(payload) }
//!          tag 1 = symbols, 2 = nodes, 3 = edges, 4 = paths — in order
//! ```
//!
//! The **symbols** payload writes each label name then each key name,
//! sorted by name — the interned symbol table, written once; elements
//! reference symbols by their `u32` index into these sorted lists, so
//! files never embed process-local symbol numbers. The **nodes** /
//! **edges** / **paths** payloads list elements in the canonical export
//! order ([`gcore_ppg::sorted_elements`]: ascending identifier), each as
//! its identifier(s) plus an attribute block (sorted label refs, then
//! properties sorted by key ref, each value set in [`Value`] total
//! order — exactly the order [`gcore_ppg::PropertySet`] stores).
//!
//! Together these rules make the writer **deterministic**: two equal
//! graphs (`==` on `PathPropertyGraph`) encode to byte-identical files
//! in any process, regardless of interner state or insertion order.
//!
//! The format is self-contained and append-free by design — the seam
//! for future backends (mmap readers, sharded section files, remote
//! object stores) without touching the data model.

use crate::error::StoreError;
use gcore_ppg::export::ElementRef;
use gcore_ppg::{
    sorted_elements, Attributes, Date, EdgeLabelStats, GraphStats, Key, Label, PathPropertyGraph,
    PathShape, PropStats, PropertySet, Table, Value,
};
use std::collections::BTreeMap;

/// The 8-byte magic every graph file starts with.
pub const MAGIC: [u8; 8] = *b"GCOREPPG";

/// The 8-byte magic every table file starts with.
pub const TABLE_MAGIC: [u8; 8] = *b"GCORETBL";

/// The 8-byte magic every planner-stats side object starts with.
pub const STATS_MAGIC: [u8; 8] = *b"GCORESTA";

/// The format version this build writes (and the only one it reads).
pub const FORMAT_VERSION: u32 = 1;

const TAG_SYMBOLS: u8 = 1;
const TAG_NODES: u8 = 2;
const TAG_EDGES: u8 = 3;
const TAG_PATHS: u8 = 4;

const VALUE_BOOL: u8 = 0;
const VALUE_INT: u8 = 1;
const VALUE_FLOAT: u8 = 2;
const VALUE_STR: u8 = 3;
const VALUE_DATE: u8 = 4;

// ---------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty to catch the
/// torn/overwritten/bit-rotted payloads a storage layer must detect
/// (this is an integrity check, not a cryptographic one). Shared with
/// the manifest codec in `catalog_io` and with the `gcore-serve` wire
/// protocol, which frames requests/responses with the same checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked sequential reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or(StoreError::Truncated)?;
        if end > self.bytes.len() {
            return Err(StoreError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| StoreError::Corrupt("string is not valid UTF-8".into()))
    }

    fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------
// Symbol table
// ---------------------------------------------------------------------

/// The file-local symbol table: labels and keys used by one graph,
/// sorted by name so that local indexes are process-independent.
struct SymbolTable {
    labels: Vec<String>,
    keys: Vec<String>,
    label_index: BTreeMap<Label, u32>,
    key_index: BTreeMap<Key, u32>,
}

impl SymbolTable {
    fn collect(g: &PathPropertyGraph) -> Self {
        let mut label_names: BTreeMap<String, Label> = BTreeMap::new();
        let mut key_names: BTreeMap<String, Key> = BTreeMap::new();
        let mut visit = |attrs: &Attributes| {
            for l in attrs.labels.iter() {
                label_names.entry(l.name()).or_insert(l);
            }
            for k in attrs.properties.keys() {
                key_names.entry(k.name()).or_insert(*k);
            }
        };
        for el in sorted_elements(g) {
            match el {
                ElementRef::Node(_, d) => visit(&d.attrs),
                ElementRef::Edge(_, d) => visit(&d.attrs),
                ElementRef::Path(_, d) => visit(&d.attrs),
            }
        }
        let mut label_index = BTreeMap::new();
        let labels: Vec<String> = label_names
            .into_iter()
            .enumerate()
            .map(|(i, (name, sym))| {
                label_index.insert(sym, i as u32);
                name
            })
            .collect();
        let mut key_index = BTreeMap::new();
        let keys: Vec<String> = key_names
            .into_iter()
            .enumerate()
            .map(|(i, (name, sym))| {
                key_index.insert(sym, i as u32);
                name
            })
            .collect();
        SymbolTable {
            labels,
            keys,
            label_index,
            key_index,
        }
    }

    fn label_ref(&self, l: Label) -> u32 {
        self.label_index[&l]
    }

    fn key_ref(&self, k: Key) -> u32 {
        self.key_index[&k]
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Tag for `Value::Null`, legal only in table cells (property sets
/// never store Null — absence and ∅ coincide, §2).
const VALUE_NULL: u8 = 5;

fn encode_value(out: &mut Vec<u8>, v: &Value) -> Result<(), StoreError> {
    match v {
        Value::Bool(b) => {
            out.push(VALUE_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(VALUE_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(VALUE_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VALUE_STR);
            put_str(out, s);
        }
        Value::Date(d) => {
            out.push(VALUE_DATE);
            out.extend_from_slice(&d.year.to_le_bytes());
            out.push(d.month);
            out.push(d.day);
        }
        // Property sets never store Null (absence and ∅ coincide, §2).
        Value::Null => {
            return Err(StoreError::Corrupt(
                "Null cannot be stored in a property set".into(),
            ))
        }
    }
    Ok(())
}

fn encode_attrs(
    out: &mut Vec<u8>,
    attrs: &Attributes,
    symbols: &SymbolTable,
) -> Result<(), StoreError> {
    let mut label_refs: Vec<u32> = attrs.labels.iter().map(|l| symbols.label_ref(l)).collect();
    label_refs.sort_unstable();
    put_u32(out, label_refs.len() as u32);
    for r in label_refs {
        put_u32(out, r);
    }
    // Properties sorted by local key ref (= key-name order), values in
    // PropertySet's stored order (Value total order) — both
    // content-determined, never process-determined.
    let mut props: Vec<(u32, &PropertySet)> = attrs
        .properties
        .iter()
        .map(|(k, vs)| (symbols.key_ref(*k), vs))
        .collect();
    props.sort_unstable_by_key(|(r, _)| *r);
    put_u32(out, props.len() as u32);
    for (key_ref, values) in props {
        put_u32(out, key_ref);
        put_u32(out, values.len() as u32);
        for v in values.iter() {
            encode_value(out, v)?;
        }
    }
    Ok(())
}

fn put_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u64(out, fnv1a64(payload));
}

/// Encode `g` into the versioned binary format.
///
/// Deterministic: equal graphs yield byte-identical output — pinned by
/// the round-trip test suite and relied on by content-addressed and
/// diff-friendly storage.
pub fn encode_graph(g: &PathPropertyGraph) -> Result<Vec<u8>, StoreError> {
    let symbols = SymbolTable::collect(g);

    let mut sym_payload = Vec::new();
    for name in &symbols.labels {
        put_str(&mut sym_payload, name);
    }
    for name in &symbols.keys {
        put_str(&mut sym_payload, name);
    }

    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut paths = Vec::new();
    for el in sorted_elements(g) {
        match el {
            ElementRef::Node(id, d) => {
                put_u64(&mut nodes, id.raw());
                encode_attrs(&mut nodes, &d.attrs, &symbols)?;
            }
            ElementRef::Edge(id, d) => {
                put_u64(&mut edges, id.raw());
                put_u64(&mut edges, d.src.raw());
                put_u64(&mut edges, d.dst.raw());
                encode_attrs(&mut edges, &d.attrs, &symbols)?;
            }
            ElementRef::Path(id, d) => {
                put_u64(&mut paths, id.raw());
                put_u32(&mut paths, d.shape.nodes().len() as u32);
                for n in d.shape.nodes() {
                    put_u64(&mut paths, n.raw());
                }
                for e in d.shape.edges() {
                    put_u64(&mut paths, e.raw());
                }
                encode_attrs(&mut paths, &d.attrs, &symbols)?;
            }
        }
    }

    let mut out = Vec::with_capacity(
        MAGIC.len() + 36 + sym_payload.len() + nodes.len() + edges.len() + paths.len() + 4 * 17,
    );
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, symbols.labels.len() as u32);
    put_u32(&mut out, symbols.keys.len() as u32);
    put_u64(&mut out, g.node_count() as u64);
    put_u64(&mut out, g.edge_count() as u64);
    put_u64(&mut out, g.path_count() as u64);
    put_section(&mut out, TAG_SYMBOLS, &sym_payload);
    put_section(&mut out, TAG_NODES, &nodes);
    put_section(&mut out, TAG_EDGES, &edges);
    put_section(&mut out, TAG_PATHS, &paths);
    Ok(out)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn decode_value(cur: &mut Cursor<'_>) -> Result<Value, StoreError> {
    match cur.u8()? {
        VALUE_BOOL => match cur.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            b => Err(StoreError::Corrupt(format!("bad bool byte {b}"))),
        },
        VALUE_INT => Ok(Value::Int(cur.i64()?)),
        VALUE_FLOAT => Ok(Value::Float(f64::from_bits(cur.u64()?))),
        VALUE_STR => Ok(Value::Str(cur.str()?.to_owned())),
        VALUE_DATE => {
            let year = i32::from_le_bytes(cur.take(4)?.try_into().unwrap());
            let month = cur.u8()?;
            let day = cur.u8()?;
            Date::new(year, month, day).map(Value::Date).ok_or_else(|| {
                StoreError::Corrupt(format!("invalid date {year:04}-{month:02}-{day:02}"))
            })
        }
        tag => Err(StoreError::Corrupt(format!("unknown value tag {tag}"))),
    }
}

fn decode_attrs(
    cur: &mut Cursor<'_>,
    labels: &[Label],
    keys: &[Key],
) -> Result<Attributes, StoreError> {
    let mut attrs = Attributes::new();
    let nlabels = cur.u32()? as usize;
    for _ in 0..nlabels {
        let r = cur.u32()? as usize;
        let label = *labels
            .get(r)
            .ok_or_else(|| StoreError::Corrupt(format!("label ref {r} out of range")))?;
        attrs.labels.insert(label);
    }
    let nprops = cur.u32()? as usize;
    for _ in 0..nprops {
        let r = cur.u32()? as usize;
        let key = *keys
            .get(r)
            .ok_or_else(|| StoreError::Corrupt(format!("key ref {r} out of range")))?;
        let nvalues = cur.u32()? as usize;
        let mut set = PropertySet::empty();
        for _ in 0..nvalues {
            set.insert(decode_value(cur)?);
        }
        attrs.set_prop(key, set);
    }
    Ok(attrs)
}

/// Read one section envelope: expect `tag`, verify the checksum, return
/// the payload slice.
fn read_section<'a>(
    cur: &mut Cursor<'a>,
    tag: u8,
    name: &'static str,
) -> Result<&'a [u8], StoreError> {
    let actual = cur.u8()?;
    if actual != tag {
        return Err(StoreError::Corrupt(format!(
            "expected section tag {tag} ({name}), found {actual}"
        )));
    }
    let len = cur.u64()? as usize;
    let payload = cur.take(len)?;
    let checksum = cur.u64()?;
    if checksum != fnv1a64(payload) {
        return Err(StoreError::ChecksumMismatch { section: name });
    }
    Ok(payload)
}

/// Decode a graph previously produced by [`encode_graph`].
///
/// Validates the magic, version, every section checksum, all symbol
/// references and the graph's own well-formedness (edges must connect
/// existing nodes, stored paths must be connected walks); trailing
/// bytes after the last section are rejected. The round-trip identity
/// `decode_graph(&encode_graph(g)?) == g` holds for every well-formed
/// graph.
pub fn decode_graph(bytes: &[u8]) -> Result<PathPropertyGraph, StoreError> {
    let mut cur = Cursor::new(bytes);
    if cur.take(MAGIC.len())? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = cur.u32()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let label_count = cur.u32()? as usize;
    let key_count = cur.u32()? as usize;
    let node_count = cur.u64()? as usize;
    let edge_count = cur.u64()? as usize;
    let path_count = cur.u64()? as usize;

    // Symbols: re-intern into this process's tables. Counts come from
    // the (unchecksummed) header, so preallocation is clamped by what
    // the payload could physically hold — a corrupt count must surface
    // as a decode error, never as a giant allocation (each entry costs
    // at least its 4-byte length prefix).
    let payload = read_section(&mut cur, TAG_SYMBOLS, "symbols")?;
    let mut sym = Cursor::new(payload);
    let mut labels = Vec::with_capacity(label_count.min(payload.len() / 4 + 1));
    for _ in 0..label_count {
        labels.push(Label::new(sym.str()?));
    }
    let mut keys = Vec::with_capacity(key_count.min(payload.len() / 4 + 1));
    for _ in 0..key_count {
        keys.push(Key::new(sym.str()?));
    }
    if !sym.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in symbols".into()));
    }

    let mut g = PathPropertyGraph::new();

    let payload = read_section(&mut cur, TAG_NODES, "nodes")?;
    let mut sec = Cursor::new(payload);
    for _ in 0..node_count {
        let id = gcore_ppg::NodeId(sec.u64()?);
        let attrs = decode_attrs(&mut sec, &labels, &keys)?;
        g.add_node(id, attrs);
    }
    if !sec.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in nodes".into()));
    }
    if g.node_count() != node_count {
        return Err(StoreError::Corrupt("duplicate node identifiers".into()));
    }

    let payload = read_section(&mut cur, TAG_EDGES, "edges")?;
    let mut sec = Cursor::new(payload);
    for _ in 0..edge_count {
        let id = gcore_ppg::EdgeId(sec.u64()?);
        let src = gcore_ppg::NodeId(sec.u64()?);
        let dst = gcore_ppg::NodeId(sec.u64()?);
        let attrs = decode_attrs(&mut sec, &labels, &keys)?;
        g.add_edge(id, src, dst, attrs)?;
    }
    if !sec.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in edges".into()));
    }
    if g.edge_count() != edge_count {
        return Err(StoreError::Corrupt("duplicate edge identifiers".into()));
    }

    let payload = read_section(&mut cur, TAG_PATHS, "paths")?;
    let mut sec = Cursor::new(payload);
    for _ in 0..path_count {
        let id = gcore_ppg::PathId(sec.u64()?);
        let nnodes = sec.u32()? as usize;
        if nnodes == 0 {
            return Err(StoreError::Corrupt(format!("path {id} has no nodes")));
        }
        // nnodes is checksummed but still untrusted (a malicious file
        // can carry a valid checksum): clamp by the 8 bytes each entry
        // must occupy in what remains of the section.
        let cap = nnodes.min(payload.len().saturating_sub(sec.pos) / 8 + 1);
        let mut nodes = Vec::with_capacity(cap);
        for _ in 0..nnodes {
            nodes.push(gcore_ppg::NodeId(sec.u64()?));
        }
        let mut edges = Vec::with_capacity(cap.saturating_sub(1));
        for _ in 0..nnodes - 1 {
            edges.push(gcore_ppg::EdgeId(sec.u64()?));
        }
        let attrs = decode_attrs(&mut sec, &labels, &keys)?;
        let shape = PathShape::new(nodes, edges)
            .ok_or_else(|| StoreError::Corrupt(format!("path {id} shape is not alternating")))?;
        g.add_path(id, shape, attrs)?;
    }
    if !sec.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in paths".into()));
    }
    if g.path_count() != path_count {
        return Err(StoreError::Corrupt("duplicate path identifiers".into()));
    }

    if !cur.is_empty() {
        return Err(StoreError::Corrupt(
            "trailing bytes after last section".into(),
        ));
    }
    Ok(g)
}

// ---------------------------------------------------------------------
// Planner statistics (side objects)
// ---------------------------------------------------------------------

/// Encode a [`GraphStats`] side object: `STATS_MAGIC`, version, then one
/// checksummed payload. Symbols are written by *name*, sorted by name,
/// so the blob never embeds process-local interner state — the same
/// rule the graph format follows. Deterministic: equal stats encode to
/// byte-identical blobs in any process.
pub fn encode_stats(s: &GraphStats) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, s.node_count);
    put_u64(&mut payload, s.edge_count);
    put_u64(&mut payload, s.path_count);

    let mut node_labels: Vec<(String, u64)> = s
        .nodes_per_label
        .iter()
        .map(|(l, n)| (l.name(), *n))
        .collect();
    node_labels.sort_unstable();
    put_u32(&mut payload, node_labels.len() as u32);
    for (name, n) in &node_labels {
        put_str(&mut payload, name);
        put_u64(&mut payload, *n);
    }

    let mut edge_labels: Vec<(String, EdgeLabelStats)> = s
        .edges_per_label
        .iter()
        .map(|(l, e)| (l.name(), *e))
        .collect();
    edge_labels.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    put_u32(&mut payload, edge_labels.len() as u32);
    for (name, e) in &edge_labels {
        put_str(&mut payload, name);
        put_u64(&mut payload, e.count);
        put_u64(&mut payload, e.distinct_src);
        put_u64(&mut payload, e.distinct_dst);
    }

    let put_props = |payload: &mut Vec<u8>, props: &[(Key, PropStats)]| {
        let mut rows: Vec<(String, PropStats)> =
            props.iter().map(|(k, p)| (k.name(), *p)).collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        put_u32(payload, rows.len() as u32);
        for (name, p) in &rows {
            put_str(payload, name);
            put_u64(payload, p.carriers);
            put_u64(payload, p.values);
            put_u64(payload, p.distinct);
        }
    };
    put_props(&mut payload, &s.node_props);
    put_props(&mut payload, &s.edge_props);

    let mut out = Vec::with_capacity(STATS_MAGIC.len() + 12 + payload.len() + 8);
    out.extend_from_slice(&STATS_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    put_u64(&mut out, fnv1a64(&payload));
    out
}

/// Decode a stats side object previously produced by [`encode_stats`].
pub fn decode_stats(bytes: &[u8]) -> Result<GraphStats, StoreError> {
    let mut cur = Cursor::new(bytes);
    if cur.take(STATS_MAGIC.len())? != STATS_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = cur.u32()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let len = cur.u64()? as usize;
    let payload = cur.take(len)?;
    let checksum = cur.u64()?;
    if checksum != fnv1a64(payload) {
        return Err(StoreError::ChecksumMismatch { section: "stats" });
    }
    if !cur.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes after stats".into()));
    }

    let mut sec = Cursor::new(payload);
    let node_count = sec.u64()?;
    let edge_count = sec.u64()?;
    let path_count = sec.u64()?;

    let n = sec.u32()? as usize;
    let mut nodes_per_label = Vec::with_capacity(n.min(payload.len() / 12 + 1));
    for _ in 0..n {
        let label = Label::new(sec.str()?);
        nodes_per_label.push((label, sec.u64()?));
    }
    nodes_per_label.sort_unstable_by_key(|(l, _)| *l);

    let n = sec.u32()? as usize;
    let mut edges_per_label = Vec::with_capacity(n.min(payload.len() / 28 + 1));
    for _ in 0..n {
        let label = Label::new(sec.str()?);
        edges_per_label.push((
            label,
            EdgeLabelStats {
                count: sec.u64()?,
                distinct_src: sec.u64()?,
                distinct_dst: sec.u64()?,
            },
        ));
    }
    edges_per_label.sort_unstable_by_key(|(l, _)| *l);

    let read_props = |sec: &mut Cursor<'_>| -> Result<Vec<(Key, PropStats)>, StoreError> {
        let n = sec.u32()? as usize;
        let mut rows = Vec::with_capacity(n.min(payload.len() / 28 + 1));
        for _ in 0..n {
            let key = Key::new(sec.str()?);
            rows.push((
                key,
                PropStats {
                    carriers: sec.u64()?,
                    values: sec.u64()?,
                    distinct: sec.u64()?,
                },
            ));
        }
        rows.sort_unstable_by_key(|(k, _)| *k);
        Ok(rows)
    };
    let node_props = read_props(&mut sec)?;
    let edge_props = read_props(&mut sec)?;
    if !sec.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in stats".into()));
    }

    Ok(GraphStats {
        node_count,
        edge_count,
        path_count,
        nodes_per_label,
        edges_per_label,
        node_props,
        edge_props,
    })
}

// ---------------------------------------------------------------------
// Tables (§5 named inputs)
// ---------------------------------------------------------------------

/// Encode a named value table: `TABLE_MAGIC`, version, column/row
/// counts, then one checksummed section holding the column names and
/// every row. Unlike property sets, table cells may hold `Null`.
pub fn encode_table(t: &Table) -> Result<Vec<u8>, StoreError> {
    let mut payload = Vec::new();
    for name in t.columns() {
        put_str(&mut payload, name);
    }
    for row in t.rows() {
        for v in row {
            match v {
                Value::Null => payload.push(VALUE_NULL),
                other => encode_value(&mut payload, other)?,
            }
        }
    }
    let mut out = Vec::with_capacity(TABLE_MAGIC.len() + 24 + payload.len() + 8);
    out.extend_from_slice(&TABLE_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, t.columns().len() as u32);
    put_u64(&mut out, t.rows().len() as u64);
    out.extend_from_slice(&payload);
    put_u64(&mut out, fnv1a64(&payload));
    Ok(out)
}

/// Decode a table previously produced by [`encode_table`].
pub fn decode_table(bytes: &[u8]) -> Result<Table, StoreError> {
    let mut cur = Cursor::new(bytes);
    if cur.take(TABLE_MAGIC.len())? != TABLE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = cur.u32()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let col_count = cur.u32()? as usize;
    let row_count = cur.u64()? as usize;
    let payload_len = bytes
        .len()
        .checked_sub(cur.pos + 8)
        .ok_or(StoreError::Truncated)?;
    let payload = cur.take(payload_len)?;
    let checksum = cur.u64()?;
    if checksum != fnv1a64(payload) {
        return Err(StoreError::ChecksumMismatch { section: "table" });
    }

    // col_count/row_count live outside the checksummed payload: clamp
    // preallocations by what the payload could physically hold (each
    // column needs its 4-byte length prefix, each cell a tag byte).
    let mut sec = Cursor::new(payload);
    let mut columns = Vec::with_capacity(col_count.min(payload.len() / 4 + 1));
    for _ in 0..col_count {
        columns.push(sec.str()?.to_owned());
    }
    let mut table =
        Table::new(columns).map_err(|e| StoreError::Corrupt(format!("bad table header: {e}")))?;
    let cell_cap = col_count.min(payload.len() + 1);
    for _ in 0..row_count {
        let mut row = Vec::with_capacity(cell_cap);
        for _ in 0..col_count {
            if sec.bytes.get(sec.pos) == Some(&VALUE_NULL) {
                sec.pos += 1;
                row.push(Value::Null);
            } else {
                row.push(decode_value(&mut sec)?);
            }
        }
        table
            .push_row(row)
            .map_err(|e| StoreError::Corrupt(format!("bad table row: {e}")))?;
    }
    if !sec.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in table".into()));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_ppg::{EdgeId, NodeId, PathId};

    fn sample() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        g.add_node(
            NodeId(1),
            Attributes::labeled("Person")
                .with_prop("name", "Ann")
                .with_prop_set(
                    "employer",
                    PropertySet::from_values([Value::str("CWI"), Value::str("MIT")]),
                ),
        );
        g.add_node(NodeId(2), Attributes::labeled("Person"));
        g.add_edge(
            EdgeId(3),
            NodeId(1),
            NodeId(2),
            Attributes::labeled("knows")
                .with_prop("since", Value::Date(Date::new(2014, 12, 1).unwrap())),
        )
        .unwrap();
        g.add_path(
            PathId(4),
            PathShape::new(vec![NodeId(1), NodeId(2)], vec![EdgeId(3)]).unwrap(),
            Attributes::labeled("route").with_prop("trust", 0.95),
        )
        .unwrap();
        g
    }

    #[test]
    fn round_trip_sample() {
        let g = sample();
        let bytes = encode_graph(&g).unwrap();
        let back = decode_graph(&bytes).unwrap();
        back.validate().unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn round_trip_empty_graph() {
        let g = PathPropertyGraph::new();
        let bytes = encode_graph(&g).unwrap();
        assert_eq!(decode_graph(&bytes).unwrap(), g);
    }

    #[test]
    fn writer_is_deterministic_across_insertion_orders() {
        let a = sample();
        // Same content, different insertion order (and thus different
        // hash-map iteration and adjacency construction order).
        let mut b = PathPropertyGraph::new();
        b.add_node(NodeId(2), Attributes::labeled("Person"));
        b.add_node(
            NodeId(1),
            Attributes::labeled("Person")
                .with_prop_set(
                    "employer",
                    PropertySet::from_values([Value::str("MIT"), Value::str("CWI")]),
                )
                .with_prop("name", "Ann"),
        );
        b.add_edge(
            EdgeId(3),
            NodeId(1),
            NodeId(2),
            Attributes::labeled("knows")
                .with_prop("since", Value::Date(Date::new(2014, 12, 1).unwrap())),
        )
        .unwrap();
        b.add_path(
            PathId(4),
            PathShape::new(vec![NodeId(1), NodeId(2)], vec![EdgeId(3)]).unwrap(),
            Attributes::labeled("route").with_prop("trust", 0.95),
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(encode_graph(&a).unwrap(), encode_graph(&b).unwrap());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_graph(&sample()).unwrap();
        bytes[0] ^= 0xff;
        assert!(matches!(decode_graph(&bytes), Err(StoreError::BadMagic)));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = encode_graph(&sample()).unwrap();
        bytes[8] = 99;
        assert!(matches!(
            decode_graph(&bytes),
            Err(StoreError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = encode_graph(&sample()).unwrap();
        for len in 0..bytes.len() {
            assert!(
                decode_graph(&bytes[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_its_section_checksum() {
        let g = sample();
        let clean = encode_graph(&g).unwrap();
        // Flip a byte inside the nodes section payload: locate it by
        // walking the envelope exactly as the decoder does.
        let sym_len_at = MAGIC.len() + 4 + 4 + 4 + 8 + 8 + 8 + 1;
        let sym_len =
            u64::from_le_bytes(clean[sym_len_at..sym_len_at + 8].try_into().unwrap()) as usize;
        let nodes_payload_at = sym_len_at + 8 + sym_len + 8 + 1 + 8;
        let mut bytes = clean.clone();
        bytes[nodes_payload_at] ^= 0x01;
        match decode_graph(&bytes) {
            Err(StoreError::ChecksumMismatch { section }) => assert_eq!(section, "nodes"),
            other => panic!("expected nodes checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_graph(&sample()).unwrap();
        bytes.push(0);
        assert!(matches!(decode_graph(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn table_round_trip_including_null_cells() {
        let mut t = Table::new(vec!["id", "näme", "maybe"]).unwrap();
        t.push_row(vec![Value::Int(1), Value::str("Ann"), Value::Null])
            .unwrap();
        t.push_row(vec![
            Value::Float(2.5),
            Value::str("ünïcødé 🦀"),
            Value::Bool(true),
        ])
        .unwrap();
        let bytes = encode_table(&t).unwrap();
        let back = decode_table(&bytes).unwrap();
        assert_eq!(back.columns(), t.columns());
        assert_eq!(back.rows(), t.rows());
        // Determinism + corruption detection.
        assert_eq!(bytes, encode_table(&t).unwrap());
        for len in 0..bytes.len() {
            assert!(decode_table(&bytes[..len]).is_err());
        }
        let mut corrupt = bytes.clone();
        let at = bytes.len() - 10;
        corrupt[at] ^= 0x04;
        assert!(decode_table(&corrupt).is_err());
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new(vec!["only"]).unwrap();
        let back = decode_table(&encode_table(&t).unwrap()).unwrap();
        assert_eq!(back.columns(), t.columns());
        assert!(back.rows().is_empty());
    }

    #[test]
    fn stats_round_trip_and_corruption() {
        let mut g = sample();
        g.build_stats();
        let s = g.stats().unwrap().clone();
        let bytes = encode_stats(&s);
        assert_eq!(decode_stats(&bytes).unwrap(), s);
        // Deterministic writer.
        assert_eq!(bytes, encode_stats(&s));
        // Truncation and byte flips never decode to the wrong stats.
        for len in 0..bytes.len() {
            assert!(decode_stats(&bytes[..len]).is_err());
        }
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                decode_stats(&corrupt).is_err() || decode_stats(&corrupt).unwrap() != s,
                "flipping byte {i} went unnoticed"
            );
        }
        // The empty graph has (trivial) stats too.
        let empty = GraphStats::compute(&PathPropertyGraph::new());
        assert_eq!(decode_stats(&encode_stats(&empty)).unwrap(), empty);
    }

    #[test]
    fn float_bit_patterns_survive() {
        let mut g = PathPropertyGraph::new();
        g.add_node(
            NodeId(1),
            Attributes::new()
                .with_prop("nan", f64::NAN)
                .with_prop("neg0", -0.0f64)
                .with_prop("inf", f64::INFINITY),
        );
        let back = decode_graph(&encode_graph(&g).unwrap()).unwrap();
        assert_eq!(back, g);
        let nan = back.prop(NodeId(1).into(), Key::new("nan"));
        match nan.as_singleton().unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            v => panic!("expected float, got {v:?}"),
        }
    }
}
