//! Pluggable storage backends: named binary objects in, named binary
//! objects out.
//!
//! [`StorageBackend`] is deliberately object-store-shaped (the same
//! protocol split Fluree uses between its ledger and storage layers):
//! the four byte-level operations are the only thing a new backend must
//! implement, and the graph-level helpers ([`put_graph`] /
//! [`get_graph`]) ride on top of them via the binary format. Keys are
//! flat `/`-separated strings; graph objects live under `graphs/`,
//! the catalog manifest under [`MANIFEST_KEY`].
//!
//! [`put_graph`]: StorageBackend::put_graph
//! [`get_graph`]: StorageBackend::get_graph

use crate::error::StoreError;
use crate::format::{
    decode_graph, decode_stats, decode_table, encode_graph, encode_stats, encode_table,
};
use gcore_ppg::{GraphStats, PathPropertyGraph, Table};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The reserved key of the catalog manifest object.
pub const MANIFEST_KEY: &str = "manifest";

const GRAPH_PREFIX: &str = "graphs/";
const TABLE_PREFIX: &str = "tables/";
const STATS_PREFIX: &str = "stats/";

/// Escape an arbitrary graph name into a key segment that is safe as a
/// filename on any filesystem: `[A-Za-z0-9._-]` pass through, every
/// other byte becomes `%XX`. A leading `.` is escaped too, so no
/// escaped name can produce a dotfile segment (`.`, `..`, or anything
/// in the `.tmp-` namespace that [`DirBackend`] reserves and rejects).
fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, &b) in name.as_bytes().iter().enumerate() {
        match b {
            b'.' if i == 0 => out.push_str("%2E"),
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// The storage key under which a graph named `name` is kept.
pub fn graph_key(name: &str) -> String {
    format!("{GRAPH_PREFIX}{}.gpg", escape_name(name))
}

/// The storage key under which a table named `name` is kept.
pub fn table_key(name: &str) -> String {
    format!("{TABLE_PREFIX}{}.gtb", escape_name(name))
}

/// The storage key under which the planner-stats side object of the
/// graph named `name` is kept.
pub fn stats_key(name: &str) -> String {
    format!("{STATS_PREFIX}{}.gst", escape_name(name))
}

/// A named-blob store. All operations are `&self` (backends are shared
/// across threads) and durable writes are atomic per object: a reader
/// never observes a half-written blob.
pub trait StorageBackend: Send + Sync {
    /// Store `bytes` under `key`, replacing any previous object.
    fn put_bytes(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Fetch the object under `key`, or [`StoreError::Missing`].
    fn get_bytes(&self, key: &str) -> Result<Vec<u8>, StoreError>;

    /// All keys currently stored, sorted ascending.
    fn list(&self) -> Result<Vec<String>, StoreError>;

    /// Remove the object under `key`, or [`StoreError::Missing`].
    fn delete(&self, key: &str) -> Result<(), StoreError>;

    /// Encode `graph` in the binary format and store it under
    /// [`graph_key`]`(name)`.
    fn put_graph(&self, name: &str, graph: &PathPropertyGraph) -> Result<(), StoreError> {
        self.put_bytes(&graph_key(name), &encode_graph(graph)?)
    }

    /// Fetch and decode the graph stored under [`graph_key`]`(name)`.
    fn get_graph(&self, name: &str) -> Result<PathPropertyGraph, StoreError> {
        decode_graph(&self.get_bytes(&graph_key(name))?)
    }

    /// Encode `table` and store it under [`table_key`]`(name)`.
    fn put_table(&self, name: &str, table: &Table) -> Result<(), StoreError> {
        self.put_bytes(&table_key(name), &encode_table(table)?)
    }

    /// Fetch and decode the table stored under [`table_key`]`(name)`.
    fn get_table(&self, name: &str) -> Result<Table, StoreError> {
        decode_table(&self.get_bytes(&table_key(name))?)
    }

    /// Encode `stats` and store them under [`stats_key`]`(name)` — the
    /// planner-stats side object of the graph named `name`.
    fn put_stats(&self, name: &str, stats: &GraphStats) -> Result<(), StoreError> {
        self.put_bytes(&stats_key(name), &encode_stats(stats))
    }

    /// Fetch and decode the stats side object under [`stats_key`]`(name)`.
    fn get_stats(&self, name: &str) -> Result<GraphStats, StoreError> {
        decode_stats(&self.get_bytes(&stats_key(name))?)
    }
}

// ---------------------------------------------------------------------
// MemBackend
// ---------------------------------------------------------------------

/// An in-memory backend: a mutex-guarded map. The reference
/// implementation for tests, and the staging area for "encode now,
/// upload later" flows.
#[derive(Default, Debug)]
pub struct MemBackend {
    objects: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemBackend {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemBackend {
    fn put_bytes(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.objects
            .lock()
            .unwrap()
            .insert(key.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn get_bytes(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        self.objects
            .lock()
            .unwrap()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::Missing(key.to_owned()))
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        Ok(self.objects.lock().unwrap().keys().cloned().collect())
    }

    fn delete(&self, key: &str) -> Result<(), StoreError> {
        self.objects
            .lock()
            .unwrap()
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| StoreError::Missing(key.to_owned()))
    }
}

// ---------------------------------------------------------------------
// DirBackend
// ---------------------------------------------------------------------

/// A directory-per-store backend: one file per object under a root
/// directory, `/` in keys mapping to subdirectories.
///
/// Writes are **atomic via rename**: the bytes land in a temporary
/// sibling file (synced to disk) which is then renamed over the target,
/// so a crash mid-write leaves either the old object or the new one,
/// never a torn file. Temporary files are invisible to [`list`].
///
/// [`list`]: StorageBackend::list
#[derive(Debug)]
pub struct DirBackend {
    root: PathBuf,
    tmp_seq: AtomicU64,
}

impl DirBackend {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DirBackend {
            root,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The root directory of this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Reject keys that could escape the root or collide with the
    /// temporary-file namespace. Backend-generated keys ([`graph_key`],
    /// [`MANIFEST_KEY`]) always pass.
    fn key_path(&self, key: &str) -> Result<PathBuf, StoreError> {
        if key.is_empty()
            || key
                .split('/')
                .any(|seg| seg.is_empty() || seg == "." || seg == ".." || seg.starts_with(".tmp-"))
        {
            return Err(StoreError::Corrupt(format!("invalid storage key '{key}'")));
        }
        let mut path = self.root.clone();
        for seg in key.split('/') {
            path.push(seg);
        }
        Ok(path)
    }

    fn walk(&self, dir: &Path, prefix: &str, out: &mut Vec<String>) -> Result<(), StoreError> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(".tmp-") {
                continue;
            }
            let key = if prefix.is_empty() {
                name.to_owned()
            } else {
                format!("{prefix}/{name}")
            };
            if entry.file_type()?.is_dir() {
                self.walk(&entry.path(), &key, out)?;
            } else {
                out.push(key);
            }
        }
        Ok(())
    }
}

impl StorageBackend for DirBackend {
    fn put_bytes(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let target = self.key_path(key)?;
        let dir = target.parent().expect("key paths have a parent");
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        if let Err(e) = fs::rename(&tmp, &target) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Sync the directory so the rename itself is durable and
        // ordered: the manifest-last protocol in `catalog_io` relies on
        // object renames reaching disk before the manifest rename, and
        // on POSIX the rename is metadata living in the directory, not
        // the file. Best effort on platforms where directories cannot
        // be opened (the write itself already succeeded).
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn get_bytes(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.key_path(key)?;
        match fs::read(&path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::Missing(key.to_owned()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut out = Vec::new();
        self.walk(&self.root, "", &mut out)?;
        out.sort();
        Ok(out)
    }

    fn delete(&self, key: &str) -> Result<(), StoreError> {
        let path = self.key_path(key)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::Missing(key.to_owned()))
            }
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_keys_escape_arbitrary_names() {
        assert_eq!(graph_key("people"), "graphs/people.gpg");
        assert_eq!(graph_key("a/b c"), "graphs/a%2Fb%20c.gpg");
        assert_eq!(graph_key("gráf"), "graphs/gr%C3%A1f.gpg");
        // Leading dots are escaped: no graph name can land in the
        // dotfile or reserved `.tmp-` filename namespace.
        assert_eq!(graph_key(".."), "graphs/%2E..gpg");
        assert_eq!(graph_key(".tmp-sneaky"), "graphs/%2Etmp-sneaky.gpg");
        assert_eq!(graph_key("v1.2"), "graphs/v1.2.gpg"); // inner dots pass through
    }

    #[test]
    fn mem_backend_basics() {
        let b = MemBackend::new();
        b.put_bytes("manifest", b"m").unwrap();
        b.put_bytes("graphs/a.gpg", b"a").unwrap();
        assert_eq!(b.get_bytes("manifest").unwrap(), b"m");
        assert_eq!(b.list().unwrap(), vec!["graphs/a.gpg", "manifest"]);
        b.delete("manifest").unwrap();
        assert!(matches!(
            b.get_bytes("manifest"),
            Err(StoreError::Missing(_))
        ));
        assert!(matches!(b.delete("manifest"), Err(StoreError::Missing(_))));
    }

    #[test]
    fn backends_are_object_safe_and_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<MemBackend>();
        assert_traits::<DirBackend>();
        let b = MemBackend::new();
        let _dynamic: &dyn StorageBackend = &b;
    }
}
