//! Errors raised by the storage layer.

use gcore_ppg::GraphError;
use std::fmt;
use std::io;

/// Anything that can go wrong encoding, decoding or moving bytes.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure in a filesystem-backed backend.
    Io(io::Error),
    /// The file does not start with the format magic.
    BadMagic,
    /// The file's format version is not one this build can read.
    BadVersion(u32),
    /// The byte stream ended before the structure it promised.
    Truncated,
    /// A section's checksum does not match its payload.
    ChecksumMismatch {
        /// Human name of the failing section ("symbols", "nodes", …).
        section: &'static str,
    },
    /// Structurally invalid data (bad tag, non-UTF-8 string, trailing
    /// bytes, count mismatch, …).
    Corrupt(String),
    /// The decoded elements violate graph well-formedness (dangling
    /// edge, disconnected stored path, identity conflict).
    Graph(GraphError),
    /// The backend has no object under this key.
    Missing(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a gcore-store file (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::Truncated => write!(f, "file truncated"),
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section} section")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
            StoreError::Graph(e) => write!(f, "decoded graph is ill-formed: {e}"),
            StoreError::Missing(key) => write!(f, "no stored object '{key}'"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}
