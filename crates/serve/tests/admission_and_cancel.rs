//! Admission control and cooperative cancellation over real TCP: the
//! connection cap must be exact under a simultaneous-connect burst
//! (the reservation is taken at accept time, so there is no
//! check-then-count window), the pending-queue watermark must shed
//! admitted connections instead of silently queueing them, a poisoned
//! engine lock must not take the server down, and a timed-out
//! statement must hand its worker straight back to the pool.

#[path = "../../core/tests/common/mod.rs"]
mod common;

use common::tour_engine;
use gcore_serve::{Client, ErrorCode, ServeConfig, Server};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Opening `2 × max_connections` sockets at once admits *exactly*
/// `max_connections` and busy-rejects the rest — never one more, never
/// one fewer. Every thread holds its verdict (and its connection) until
/// all verdicts are in, so no slot is recycled mid-burst.
#[test]
fn simultaneous_burst_respects_the_cap_exactly() {
    const CAP: usize = 2;
    let config = ServeConfig {
        threads: CAP,
        max_connections: CAP,
        ..ServeConfig::default()
    };
    let server = Server::start(tour_engine(), config).unwrap();
    let addr = server.addr();

    let barrier = Arc::new(Barrier::new(2 * CAP));
    let outcomes: Vec<bool> = (0..2 * CAP)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let result = Client::connect(addr);
                let admitted = match &result {
                    Ok(_) => true,
                    Err(e) => {
                        assert_eq!(e.remote_code(), Some(ErrorCode::Busy), "got {e}");
                        false
                    }
                };
                // Keep admitted connections open until every socket in
                // the burst has its verdict.
                barrier.wait();
                admitted
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("burst thread panicked"))
        .collect();

    let admitted = outcomes.iter().filter(|&&ok| ok).count();
    assert_eq!(admitted, CAP, "cap must be exact under a burst");
    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 2 * CAP as u64);
    assert_eq!(stats.connections_rejected_busy, CAP as u64);
    server.wait();
}

/// With a pending watermark below the cap, a connection admitted under
/// the cap is still shed `Busy` once the worker backlog is full —
/// counted separately from cap rejections.
#[test]
fn backlog_over_the_watermark_is_shed() {
    let config = ServeConfig {
        threads: 1,
        max_connections: 8,
        max_pending: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(tour_engine(), config).unwrap();
    let addr = server.addr();

    // Occupy the only worker; the round trip guarantees pickup, so the
    // pending queue is empty again.
    let mut occupant = Client::connect(addr).unwrap();
    assert!(occupant.ping().is_ok());

    // A raw socket fills the pending queue to the watermark. It never
    // handshakes; it exists to sit in the backlog.
    let backlog = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // let the accept loop queue it

    // The next connection is under the cap (2 of 8 slots held) but over
    // the watermark: shed.
    match Client::connect(addr) {
        Err(e) => assert_eq!(e.remote_code(), Some(ErrorCode::Busy), "got {e}"),
        Ok(_) => panic!("third connection should have been shed"),
    }
    let stats = server.stats();
    assert_eq!(stats.connections_shed_queue_full, 1);
    assert_eq!(
        stats.connections_rejected_busy, 0,
        "shedding must not be miscounted as a cap rejection"
    );

    // Draining the backlog and freeing the worker restores service.
    drop(backlog);
    drop(occupant);
    let mut retried = None;
    for _ in 0..100 {
        match Client::connect(addr) {
            Ok(c) => {
                retried = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let mut client = retried.expect("service never recovered after the shed");
    assert!(client.ping().is_ok());
    server.wait();
}

/// A panic under the engine lock poisons the mutex; serving must
/// recover the guard and keep answering — on the connection that was
/// already open and on fresh ones.
#[test]
fn poisoned_engine_lock_does_not_kill_the_server() {
    let server = Server::start(tour_engine(), ServeConfig::default()).unwrap();
    let mut before = Client::connect(server.addr()).unwrap();
    assert!(before.ping().is_ok());

    server.poison_engine_lock_for_tests();

    let reply = before
        .query("SELECT n.name AS name MATCH (n:Person)")
        .expect("existing connection must survive the poisoned lock");
    assert!(reply.output.unwrap().into_table().is_some());

    let mut after = Client::connect(server.addr()).unwrap();
    let reply = after
        .query("SELECT n.name AS name MATCH (n:Person)")
        .expect("fresh connection must survive the poisoned lock");
    assert!(reply.output.unwrap().into_table().is_some());
    server.wait();
}

/// The abandoned-worker regression: a statement cut off by the timeout
/// must return its worker to the pool immediately — the *same*
/// connection answers a fast statement next, and with every worker
/// having just timed out, a full round of concurrent fast statements
/// completes promptly instead of queueing behind orphaned evaluations.
#[test]
fn timed_out_statements_return_their_workers() {
    const THREADS: usize = 2;
    let mut engine = tour_engine();
    engine
        .run("GRAPH VIEW wide AS (CONSTRUCT (x) MATCH (n:Person), (m:Person), (k:Person))")
        .unwrap();
    let config = ServeConfig {
        threads: THREADS,
        max_connections: 2 * THREADS,
        ..ServeConfig::default()
    };
    let server = Server::start(engine, config).unwrap();
    let addr = server.addr();

    // Eight-way cross product over Persons: astronomically more work
    // than a 1 ms budget allows, so only cancellation can end it.
    const SLOW: &str = "SELECT COUNT(*) AS c \
                        MATCH (a:Person), (b:Person), (c:Person), (d:Person), \
                              (e:Person), (f:Person), (g:Person), (h:Person)";

    let rounds: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_statement_timeout_ms(1).unwrap();
                let err = client.query(SLOW).unwrap_err();
                assert_eq!(err.remote_code(), Some(ErrorCode::Timeout), "got {err}");
                // The worker came straight back: the same connection
                // answers again, promptly.
                let started = Instant::now();
                let reply = client
                    .query("SELECT n.name AS name MATCH (n:Person)")
                    .expect("connection must survive its own timeout");
                assert!(reply.output.unwrap().into_table().is_some());
                started.elapsed()
            })
        })
        .collect();
    for round in rounds {
        let elapsed = round.join().expect("client thread panicked");
        assert!(
            elapsed < Duration::from_secs(10),
            "fast statement took {elapsed:?}: worker not reclaimed"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.statement_timeouts, THREADS as u64);
    assert_eq!(stats.statements_cancelled, THREADS as u64);
    server.wait();
}
