//! The serving layer's observability surface, end to end over TCP:
//! the Prometheus-style `metrics` route, the slow-query log, and the
//! engine-level pairs the `stats` route appends for version-skewed
//! clients (decoded into `StatsSnapshot::extra`).

#[path = "../../core/tests/common/mod.rs"]
mod common;

use common::tour_engine;
use gcore_serve::{Client, ServeConfig, Server, StatsSnapshot};
use std::time::Duration;

const PEOPLE_QUERY: &str = "SELECT n.name AS name MATCH (n:Person)";

/// A reachability query that touches the SCC cache.
const REACH_QUERY: &str = "CONSTRUCT (m) MATCH (n)-/<:knows*>/->(m) WHERE n.employer = 'Acme'";

#[test]
fn metrics_route_serves_both_registries_as_prometheus_text() {
    let server = Server::start(tour_engine(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.query(PEOPLE_QUERY).unwrap();
    client.query(REACH_QUERY).unwrap();

    let text = client.metrics().unwrap();
    // Server counters under `gcore_`, typed.
    assert!(text.contains("# TYPE gcore_queries_ok counter"), "{text}");
    assert!(text.contains("gcore_queries_ok 2"), "{text}");
    assert!(text.contains("# TYPE gcore_connections_active gauge"));
    assert!(text.contains("# TYPE gcore_latency_query_us histogram"));
    assert!(text.contains("gcore_latency_query_us_count 2"));
    assert!(text.contains("gcore_latency_query_us_bucket{le=\"+Inf\"} 2"));
    // Engine core metrics under `gcore_engine_`: every served
    // statement is counted, and the SCC-cache gauges are refreshed at
    // render time.
    assert!(text.contains("gcore_engine_statements 2"), "{text}");
    assert!(text.contains("# TYPE gcore_engine_scc_cache_misses gauge"));
    assert!(text.contains("gcore_engine_engine_epoch"));

    drop(client);
    server.wait();
}

#[test]
fn stats_route_appends_engine_pairs_that_skewed_clients_keep() {
    let server = Server::start(tour_engine(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.query(REACH_QUERY).unwrap();
    client.query(REACH_QUERY).unwrap();

    let named = client.stats().unwrap();
    let get = |name: &str| {
        named
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("stats reply lacks '{name}'"))
    };
    assert_eq!(get("queries_ok"), 2);
    // The second identical reachability query must hit the SCC cache
    // the first one populated.
    assert!(get("scc_cache_misses") >= 1);
    assert!(get("scc_cache_hits") >= 1);
    let _ = get("scc_cache_evictions");
    assert!(get("engine_epoch") >= 1);

    // This build has no dedicated fields for the engine pairs: they
    // must land in `extra`, not vanish (forward compatibility).
    let snap = StatsSnapshot::from_named(&named);
    assert!(snap.extra.iter().any(|(n, _)| n == "scc_cache_hits"));
    assert_eq!(StatsSnapshot::from_named(&snap.named()), snap);

    drop(client);
    server.wait();
}

#[test]
fn slowlog_records_over_threshold_statements_with_profiles() {
    let config = ServeConfig {
        slow_threshold: Some(Duration::ZERO), // everything is "slow"
        slowlog_capacity: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(tour_engine(), config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let expected_epoch = client.ping().unwrap();
    client.query(PEOPLE_QUERY).unwrap();
    client.query(REACH_QUERY).unwrap();
    client.query("this does not parse").unwrap_err();

    let entries = client.slowlog().unwrap();
    // Capacity 2: the oldest of the three statements was evicted.
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].text, REACH_QUERY);
    assert_eq!(entries[0].epoch, expected_epoch);
    // Successful statements carry a rendered execution profile with
    // real timings; the parse failure has none.
    assert!(
        entries[0].profile.contains("match"),
        "{}",
        entries[0].profile
    );
    assert!(
        entries[0].profile.contains("rows="),
        "{}",
        entries[0].profile
    );
    assert_eq!(entries[1].text, "this does not parse");
    assert!(entries[1].profile.is_empty());

    // The counter and the ring agree.
    assert_eq!(server.stats().slow_queries, 3);
    drop(client);
    server.wait();
}

#[test]
fn slowlog_is_empty_without_a_threshold() {
    let server = Server::start(tour_engine(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.query(PEOPLE_QUERY).unwrap();
    assert!(client.slowlog().unwrap().is_empty());
    assert_eq!(server.stats().slow_queries, 0);
    drop(client);
    server.wait();
}
