//! Concurrency and isolation over TCP: many client threads interleave
//! queries and transacts against one server; every connection must see
//! monotone epochs, read its own writes, never observe a torn
//! snapshot, and the final committed state must equal a sequential
//! replay of the same commits.

#[path = "../../core/tests/common/mod.rs"]
mod common;

use common::{canon_graph, tour_engine};
use gcore::QueryOutput;
use gcore_serve::{Client, ErrorCode, ServeConfig, Server};
use std::sync::mpsc;
use std::time::Duration;

const WRITERS: usize = 3;
const ROUNDS: usize = 4;

/// The view committed by writer `w` in round `r`: one fresh node per
/// Person, all carrying the round's unique label.
fn view_script(w: usize, r: usize) -> String {
    format!("GRAPH VIEW t_{w}_{r} AS (CONSTRUCT (x:W{w}R{r}) MATCH (n:Person))")
}

#[test]
fn interleaved_queries_and_transacts_are_isolated_and_monotone() {
    let fixture = tour_engine();
    let watermark = fixture.catalog().ids().peek();
    let server = Server::start(fixture, ServeConfig::default()).unwrap();
    let addr = server.addr();

    // Each writer thread reports every commit as (epoch, script): the
    // epochs define the total commit order for the sequential replay.
    let (tx, rx) = mpsc::channel::<(u64, String)>();
    let threads: Vec<_> = (0..WRITERS)
        .map(|w| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut last_epoch = client.hello_epoch();
                for r in 0..ROUNDS {
                    // Write: the commit must strictly advance the epoch
                    // this connection has observed.
                    let script = view_script(w, r);
                    let committed = client.transact(&script).unwrap();
                    assert!(
                        committed.epoch > last_epoch,
                        "writer {w}: commit epoch {} did not advance past {last_epoch}",
                        committed.epoch
                    );
                    last_epoch = committed.epoch;
                    tx.send((committed.epoch, script)).unwrap();

                    // Read-your-writes on a fresh snapshot: the view
                    // just committed is visible, and every node in it
                    // carries exactly this round's label — a mixed
                    // labelling would mean the read straddled two
                    // catalog states.
                    let read = client
                        .query(&format!("CONSTRUCT (m) MATCH (m) ON t_{w}_{r}"))
                        .unwrap();
                    assert!(
                        read.epoch >= last_epoch,
                        "writer {w}: read snapshot older than own commit"
                    );
                    last_epoch = last_epoch.max(read.epoch);
                    let graph = match read.output {
                        Some(QueryOutput::Graph(g)) => g,
                        other => panic!("writer {w}: expected a graph, got {other:?}"),
                    };
                    assert!(graph.node_count() > 0, "writer {w}: view t_{w}_{r} empty");
                    let expected_label = format!("W{w}R{r}");
                    for node in graph.node_ids() {
                        let labels = graph.node(node).unwrap().attrs.labels.names();
                        assert_eq!(
                            labels,
                            vec![expected_label.clone()],
                            "writer {w}: torn snapshot in round {r}"
                        );
                    }
                }
            })
        })
        .collect();
    drop(tx);
    for t in threads {
        t.join().expect("writer thread panicked");
    }

    // Sequential replay in commit-epoch order reproduces the final
    // state: every epoch is distinct (commits really serialized), and
    // each view's content matches the replayed engine's canonically.
    let mut commits: Vec<(u64, String)> = rx.iter().collect();
    assert_eq!(commits.len(), WRITERS * ROUNDS);
    commits.sort();
    for pair in commits.windows(2) {
        assert_ne!(pair[0].0, pair[1].0, "two commits shared an epoch");
    }
    let mut replay = tour_engine();
    for (_, script) in &commits {
        replay.run(script).unwrap();
    }

    let mut inspector = Client::connect(addr).unwrap();
    for w in 0..WRITERS {
        for r in 0..ROUNDS {
            let text = format!("CONSTRUCT (m) MATCH (m) ON t_{w}_{r}");
            let served = match inspector.query(&text).unwrap().output {
                Some(QueryOutput::Graph(g)) => canon_graph(&g, watermark),
                other => panic!("expected a graph for t_{w}_{r}, got {other:?}"),
            };
            let replayed = match replay.run(&text).unwrap() {
                QueryOutput::Graph(g) => canon_graph(&g, watermark),
                other => panic!("expected a graph for t_{w}_{r}, got {other:?}"),
            };
            assert_eq!(
                served, replayed,
                "t_{w}_{r} diverged from sequential replay"
            );
        }
    }
    server.wait();
}

/// Beyond the connection cap, a new client is greeted with `S001 Busy`
/// and the connected client keeps working; once the slot frees up, the
/// next connection succeeds.
#[test]
fn connections_over_the_cap_get_busy_and_retry_succeeds() {
    let config = ServeConfig {
        threads: 1,
        max_connections: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(tour_engine(), config).unwrap();
    let addr = server.addr();

    let mut first = Client::connect(addr).unwrap();
    // A round trip guarantees the worker picked the connection up, so
    // the active gauge is 1 before the second connect.
    assert!(first.ping().is_ok());

    match Client::connect(addr) {
        Err(e) => assert_eq!(e.remote_code(), Some(ErrorCode::Busy), "got {e}"),
        Ok(_) => panic!("second connection should have been rejected busy"),
    }
    assert!(
        first.ping().is_ok(),
        "busy rejection hurt the live connection"
    );
    assert_eq!(server.stats().connections_rejected_busy, 1);

    drop(first);
    // The slot frees asynchronously; retry briefly.
    let mut retried = None;
    for _ in 0..100 {
        match Client::connect(addr) {
            Ok(c) => {
                retried = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let mut client = retried.expect("slot never freed after disconnect");
    assert!(client.ping().is_ok());
    server.wait();
}

/// A statement over the per-connection timeout comes back as `S002`,
/// the connection survives, and disabling the timeout restores long
/// statements.
#[test]
fn statement_timeout_cuts_off_long_queries() {
    let mut engine = tour_engine();
    // A deliberately explosive statement: the triple cross product over
    // Persons is big enough to out-run a 1 ms budget by orders of
    // magnitude. Cancellation is cooperative, so the worker abandons it
    // at the next loop boundary rather than computing it to the end.
    engine
        .run("GRAPH VIEW wide AS (CONSTRUCT (x) MATCH (n:Person), (m:Person), (k:Person))")
        .unwrap();
    let server = Server::start(engine, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    const SLOW: &str = "SELECT COUNT(*) AS c \
                        MATCH (a:Person), (b:Person), (c:Person), (d:Person), \
                              (e:Person), (f:Person)";

    client.set_statement_timeout_ms(1).unwrap();
    let err = client.query(SLOW).unwrap_err();
    assert_eq!(err.remote_code(), Some(ErrorCode::Timeout), "got {err}");
    assert_eq!(server.stats().statement_timeouts, 1);
    // The timeout fired through cooperative cancellation — the worker
    // got its statement back, it didn't park it on a detached thread.
    assert_eq!(server.stats().statements_cancelled, 1);

    // The connection is still fine, and fast statements still answer.
    let reply = client
        .query("SELECT n.name AS name MATCH (n:Person)")
        .unwrap();
    assert!(reply.output.unwrap().into_table().is_some());

    // Disabling the timeout lets the slow statement complete.
    client.set_statement_timeout_ms(0).unwrap();
    let reply = client.query(SLOW).unwrap();
    assert!(reply.output.unwrap().into_table().is_some());
    server.wait();
}
