//! Boot a real server on an ephemeral port and differential-test it:
//! every answer served over TCP must be canonically identical to the
//! in-process engine's answer for the same statement — for the paper's
//! full §3/§5 corpus and for an SNB-1000 mixed read/write workload.
//!
//! Canonicalization reuses the differential suites' shared helper
//! (`crates/core/tests/common/mod.rs`): both sides start from
//! bit-identical fixtures, so one generator watermark absorbs the
//! skolemized identifiers each side draws independently.

#[path = "../../core/tests/common/mod.rs"]
mod common;

use common::{canon_graph, canon_table, corpus_texts, tour_engine};
use gcore::{Engine, QueryOutput};
use gcore_repro::corpus;
use gcore_serve::{Client, ErrorCode, Reply, ServeConfig, ServeError, Server};
use gcore_snb::{generate, SnbConfig};

/// A unique scratch directory removed on drop (std-only tempdir).
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gcore-serve-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Canonicalize an in-process outcome, rendering errors by `Display`
/// (the server transports engine errors as display text).
fn canon_local(result: &gcore::Result<QueryOutput>, watermark: u64) -> String {
    match result {
        Ok(QueryOutput::Graph(g)) => format!("GRAPH\n{}", canon_graph(g, watermark)),
        Ok(QueryOutput::Table(t)) => format!("TABLE\n{}", canon_table(t)),
        Err(e) => format!("ERR {e}"),
    }
}

/// Canonicalize a served outcome the same way.
fn canon_remote(result: &Result<Reply, ServeError>, watermark: u64) -> String {
    match result {
        Ok(Reply {
            output: Some(QueryOutput::Graph(g)),
            ..
        }) => format!("GRAPH\n{}", canon_graph(g, watermark)),
        Ok(Reply {
            output: Some(QueryOutput::Table(t)),
            ..
        }) => format!("TABLE\n{}", canon_table(t)),
        Ok(Reply { output: None, .. }) => "EMPTY".to_owned(),
        Err(ServeError::Remote {
            code: ErrorCode::Statement,
            message,
        }) => format!("ERR {message}"),
        Err(other) => format!("TRANSPORT {other}"),
    }
}

/// The tentpole differential: the full guided-tour corpus served over
/// TCP, statement by statement, against `Engine::run` in-process.
#[test]
fn corpus_over_tcp_matches_in_process() {
    let mut local = tour_engine();
    let watermark = local.catalog().ids().peek();

    let server = Server::start(tour_engine(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for (i, text) in corpus_texts().iter().enumerate() {
        let reference = canon_local(&local.run(text), watermark);
        let served = canon_remote(&client.run(text), watermark);
        assert_eq!(
            reference,
            served,
            "corpus statement {i} ({}) diverged over TCP",
            corpus::ALL[i].id
        );
    }

    let stats = server.stats();
    assert!(stats.queries_ok + stats.queries_err > 0);
    assert!(
        stats.transacts_ok > 0,
        "corpus graph views route as transacts"
    );
    server.wait();
}

/// SNB-1000 over TCP: a mixed read/write workload (scans, joins,
/// reachability, shortest paths, plus a committed view) answers
/// identically to the in-process engine.
#[test]
fn snb_1000_mixed_workload_over_tcp_matches_in_process() {
    const WORKLOAD: &[&str] = &[
        "SELECT n.personId AS id, n.firstName AS name MATCH (n:Person) WHERE n.personId < 40",
        "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) WHERE n.personId < 30",
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId = 0",
        "GRAPH VIEW young AS (CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 10)",
        "CONSTRUCT (m) MATCH (m) ON young",
        "CONSTRUCT (n)-/@p:sp/->(m) \
         MATCH (n:Person)-/p <:knows*>/->(m:Person) WHERE n.personId = 1",
        "CONSTRUCT (t) MATCH (n:Person)-[:hasInterest]->(t:Tag) WHERE n.personId < 25",
    ];

    fn snb_engine() -> Engine {
        let mut engine = Engine::new();
        let data = generate(&SnbConfig::scale(1000), &engine.catalog().ids().clone());
        engine.register_graph("snb", data.graph);
        engine.set_default_graph("snb");
        engine
    }

    let mut local = snb_engine();
    let watermark = local.catalog().ids().peek();
    let server = Server::start(snb_engine(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for (i, text) in WORKLOAD.iter().enumerate() {
        let reference = canon_local(&local.run(text), watermark);
        let served = canon_remote(&client.run(text), watermark);
        assert_eq!(
            reference, served,
            "SNB workload statement {i} diverged over TCP"
        );
    }
    server.wait();
}

/// The admin surface: listing, ping, explain, stats, and save/load
/// against a storage directory (including the epoch surviving the
/// save → load round trip).
#[test]
fn admin_routes_work_end_to_end() {
    let tmp = TempDir::new("admin");
    let config = ServeConfig {
        data_dir: Some(tmp.0.clone()),
        ..ServeConfig::default()
    };
    let server = Server::start(tour_engine(), config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Listing matches the fixture.
    let listing = client.list_graphs().unwrap();
    assert_eq!(
        listing.graphs,
        vec!["company_graph", "figure2", "social_graph"]
    );
    assert_eq!(listing.tables, vec!["orders"]);
    assert_eq!(listing.default_graph.as_deref(), Some("social_graph"));

    // Ping reports the same epoch the greeting carried.
    assert_eq!(client.ping().unwrap(), client.hello_epoch());

    // Explain renders a plan.
    let plan = client
        .explain("SELECT n.name AS name MATCH (n:Person)")
        .unwrap();
    assert!(!plan.is_empty());

    // Save, mutate, load: the stored state comes back and the epoch
    // keeps climbing (never regresses past what this client saw).
    let saved_epoch = client.save().unwrap();
    let after_commit = client
        .transact("GRAPH VIEW scratch AS (CONSTRUCT (n) MATCH (n:Person))")
        .unwrap()
        .epoch;
    assert!(after_commit > saved_epoch);
    assert!(client
        .list_graphs()
        .unwrap()
        .graphs
        .contains(&"scratch".to_owned()));
    let reloaded_epoch = client.load().unwrap();
    assert!(reloaded_epoch > after_commit, "reload epoch stays monotone");
    assert!(
        !client
            .list_graphs()
            .unwrap()
            .graphs
            .contains(&"scratch".to_owned()),
        "load really swapped the catalog back"
    );

    // Stats counted this session's traffic.
    let counters = client.stats().unwrap();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(get("admin_requests") >= 6);
    assert_eq!(get("connections_accepted"), 1);
    assert_eq!(get("transacts_ok"), 1);
    server.wait();
}

/// A server without `data_dir` answers save/load with the `S005`
/// storage error — and the connection stays usable.
#[test]
fn save_without_storage_is_a_clean_error() {
    let server = Server::start(tour_engine(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.save().unwrap_err();
    assert_eq!(err.remote_code(), Some(ErrorCode::Storage));
    // Still healthy afterwards.
    assert!(client.ping().is_ok());
    server.wait();
}

/// Statement errors come back as `S003` error frames carrying the
/// engine diagnostic, and the connection survives them.
#[test]
fn statement_errors_survive_the_connection() {
    let server = Server::start(tour_engine(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let err = client.query("SELECT x.name AS n MATCH (y)").unwrap_err();
    assert_eq!(err.remote_code(), Some(ErrorCode::Statement));

    // Same connection keeps answering correctly.
    let reply = client
        .query("SELECT n.name AS name MATCH (n:Person)")
        .unwrap();
    assert!(reply.output.unwrap().into_table().is_some());
    server.wait();
}

/// Shutdown drains cleanly: the handle joins, and new connections are
/// `serve_forever` keeps serving instead of initiating shutdown — the
/// daemon-binary lifetime. Regression: the `gcore-serve` binary used
/// `wait()`, which shuts the server down itself, so the process exited
/// right after printing its listening address.
#[test]
fn serve_forever_keeps_the_server_alive() {
    let server = Server::start(tour_engine(), ServeConfig::default()).unwrap();
    let addr = server.addr();
    // The binary's main thread parks here; the test parks a throwaway
    // thread instead (it dies with the test process).
    std::thread::spawn(move || server.serve_forever());
    std::thread::sleep(std::time::Duration::from_millis(200));

    let mut client = Client::connect(addr).expect("server must still be accepting");
    assert!(client.ping().is_ok());
    let reply = client.query("SELECT n.firstName AS name MATCH (n:Person)");
    assert!(reply.is_ok(), "server must still be serving statements");
}

/// refused afterwards.
#[test]
fn shutdown_drains_and_refuses_new_connections() {
    let server = Server::start(tour_engine(), ServeConfig::default()).unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.ping().is_ok());
    server.wait(); // shuts down and joins every thread

    // The listener is gone (or at best answers nothing): either the
    // connect fails outright or the handshake dies.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(_) => panic!("server accepted a connection after shutdown"),
    }
}
