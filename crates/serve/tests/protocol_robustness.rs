//! Protocol robustness: property tests over the frame codec (mirroring
//! the corruption style of `crates/store/tests/roundtrip.rs`) plus
//! live-server abuse — a malformed client must never panic or wedge
//! the server, and a well-behaved client must keep getting answers
//! afterwards.

use gcore::Engine;
use gcore_ppg::{Attributes, GraphBuilder};
use gcore_serve::protocol::{
    decode_frame, decode_frame_exact, encode_frame, AdminRequest, Frame, FrameKind,
    HANDSHAKE_MAGIC, MAX_FRAME_PAYLOAD, PROTOCOL_VERSION,
};
use gcore_serve::{Client, ServeConfig, ServeError, Server};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const KINDS: [FrameKind; 9] = [
    FrameKind::Query,
    FrameKind::Transact,
    FrameKind::Admin,
    FrameKind::Header,
    FrameKind::Chunk,
    FrameKind::Done,
    FrameKind::Error,
    FrameKind::AdminOk,
    FrameKind::Hello,
];

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(192)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The round-trip identity on arbitrary payloads for every kind.
    #[test]
    fn frames_round_trip(kind in 0usize..KINDS.len(), payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let kind = KINDS[kind];
        let bytes = encode_frame(kind, &payload);
        let frame = decode_frame_exact(&bytes).expect("valid frame decodes");
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.payload, payload);
        // Streaming decode consumes exactly the encoded length.
        let (again, consumed) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(again.kind, kind);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// Every truncation of a valid frame is rejected with a protocol
    /// error — no prefix parses, nothing panics.
    #[test]
    fn every_truncation_is_rejected(kind in 0usize..KINDS.len(), payload in prop::collection::vec(any::<u8>(), 0..64), cut in 0usize..4096) {
        let bytes = encode_frame(KINDS[kind], &payload);
        let cut = cut % bytes.len();
        prop_assert!(matches!(
            decode_frame(&bytes[..cut]),
            Err(ServeError::Protocol(_))
        ));
    }

    /// Every single-bit flip of a valid frame is rejected: the checksum
    /// covers the kind byte, the length field and the payload, so no
    /// corrupted frame can pass as the original.
    #[test]
    fn every_bit_flip_is_rejected(kind in 0usize..KINDS.len(), payload in prop::collection::vec(any::<u8>(), 0..64), at in 0usize..4096, bit in 0u32..8) {
        let bytes = encode_frame(KINDS[kind], &payload);
        let at = at % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 1 << bit;
        prop_assert!(
            decode_frame_exact(&corrupt).is_err(),
            "flipping bit {} of byte {} went undetected",
            bit,
            at
        );
    }

    /// Arbitrary admin payload bytes either decode to a legal request
    /// or error cleanly — the decoder never panics on garbage.
    #[test]
    fn admin_decoder_never_panics(payload in prop::collection::vec(any::<u8>(), 0..96)) {
        match AdminRequest::decode(&payload) {
            Ok(req) => {
                // Anything that decodes must re-encode to the same bytes.
                prop_assert_eq!(req.encode(), payload);
            }
            Err(ServeError::Protocol(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error sort: {}", other),
        }
    }
}

// ---------------------------------------------------------------------
// Live-server abuse
// ---------------------------------------------------------------------

fn tiny_engine() -> Engine {
    let mut engine = Engine::new();
    let mut b = GraphBuilder::new(engine.catalog().ids().clone());
    b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
    engine.register_graph("people", b.build());
    engine.set_default_graph("people");
    engine
}

/// Assert the server still answers a well-behaved client.
fn assert_alive(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("healthy client connects");
    let reply = client
        .query("SELECT n.name AS name MATCH (n:Person)")
        .expect("healthy client gets an answer");
    assert_eq!(reply.output.unwrap().into_table().unwrap().len(), 1);
}

/// Raw abusive connections: bad magic, bad version, garbage frames,
/// hostile lengths, truncated frames. After every single one the
/// server must still serve a healthy client — and never panic.
#[test]
fn malformed_clients_cannot_wedge_the_server() {
    let config = ServeConfig {
        threads: 2,
        max_connections: 4,
        // Short frame deadline so the half-frame abuse cases conclude
        // quickly instead of waiting out the default 30 s.
        frame_deadline: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::start(tiny_engine(), config).unwrap();
    let addr = server.addr();

    let good_hello: Vec<u8> = {
        let mut h = Vec::new();
        h.extend_from_slice(&HANDSHAKE_MAGIC);
        h.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        h
    };

    // Each abuse is a closure over a raw stream; the server must
    // survive them all.
    type Abuse = (&'static str, fn(&mut TcpStream, &[u8]));

    fn send_all(s: &mut TcpStream, bytes: &[u8]) {
        let _ = s.write_all(bytes);
    }

    let abuses: [Abuse; 7] = [
        ("wrong magic", |s, _| {
            send_all(s, b"NOTMAGIC\x01\x00\x00\x00");
        }),
        ("wrong version", |s, _| {
            let mut h = HANDSHAKE_MAGIC.to_vec();
            h.extend_from_slice(&999u32.to_le_bytes());
            send_all(s, &h);
        }),
        ("garbage after handshake", |s, hello| {
            send_all(s, hello);
            send_all(s, &[0xde, 0xad, 0xbe, 0xef, 0x99, 0x42, 0x42, 0x42]);
        }),
        ("hostile length", |s, hello| {
            send_all(s, hello);
            let mut frame = vec![0x01u8];
            frame.extend_from_slice(&u32::MAX.to_le_bytes());
            send_all(s, &frame);
        }),
        ("length over the cap", |s, hello| {
            send_all(s, hello);
            let mut frame = vec![0x01u8];
            frame.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
            frame.extend_from_slice(&[0u8; 64]);
            send_all(s, &frame);
        }),
        ("truncated frame then hang-up", |s, hello| {
            send_all(s, hello);
            // A legal header promising 100 bytes, then only 3.
            let mut frame = vec![0x01u8];
            frame.extend_from_slice(&100u32.to_le_bytes());
            frame.extend_from_slice(b"abc");
            send_all(s, &frame);
        }),
        ("server-only frame kind", |s, hello| {
            send_all(s, hello);
            // A well-formed frame of a kind clients must not send.
            send_all(s, &encode_frame(FrameKind::Hello, &[1, 2, 3]));
        }),
    ];

    for (name, abuse) in abuses {
        let mut stream = TcpStream::connect(addr).unwrap();
        abuse(&mut stream, &good_hello);
        // Drain whatever the server answers (an error frame or an
        // immediate close) without asserting its exact shape here —
        // the decisive property is that the server survives.
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut sink = [0u8; 256];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        drop(stream);
        assert_alive(addr);
        let _ = name; // labels the abuse for panic backtraces above
    }

    // Nothing panicked and every violation was counted.
    assert!(server.stats().protocol_errors >= 6);
    server.wait();
}

/// Corrupted-but-complete frames after a valid handshake are answered
/// with an `S000` protocol error frame before the connection closes.
#[test]
fn corrupted_frame_gets_a_protocol_error_frame() {
    let server = Server::start(tiny_engine(), ServeConfig::default()).unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut hello = HANDSHAKE_MAGIC.to_vec();
    hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    stream.write_all(&hello).unwrap();

    // Read the server's hello frame: header, payload, checksum.
    let hello_frame = read_one_frame(&mut stream);
    assert_eq!(hello_frame.kind, FrameKind::Hello);

    // A valid query frame with one payload bit flipped.
    let mut corrupt = encode_frame(FrameKind::Query, b"SELECT n.name AS n MATCH (n)");
    let at = corrupt.len() / 2;
    corrupt[at] ^= 0x01;
    stream.write_all(&corrupt).unwrap();

    let reply = read_one_frame(&mut stream);
    assert_eq!(reply.kind, FrameKind::Error);
    let (code, _message) = gcore_serve::protocol::decode_error(&reply.payload).unwrap();
    assert_eq!(code, gcore_serve::ErrorCode::Protocol);
    server.wait();
}

/// A well-formed Admin frame with an undecodable payload gets `S004`
/// and the connection survives (the transport was fine; only the
/// argument was bad).
#[test]
fn bad_admin_payload_gets_admin_error_and_connection_survives() {
    let server = Server::start(tiny_engine(), ServeConfig::default()).unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut hello = HANDSHAKE_MAGIC.to_vec();
    hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    stream.write_all(&hello).unwrap();
    assert_eq!(read_one_frame(&mut stream).kind, FrameKind::Hello);

    // Opcode 250 is no admin request.
    stream
        .write_all(&encode_frame(FrameKind::Admin, &[250, 1, 2, 3]))
        .unwrap();
    let reply = read_one_frame(&mut stream);
    assert_eq!(reply.kind, FrameKind::Error);
    let (code, _) = gcore_serve::protocol::decode_error(&reply.payload).unwrap();
    assert_eq!(code, gcore_serve::ErrorCode::Admin);

    // Same connection still answers a real request.
    stream
        .write_all(&encode_frame(
            FrameKind::Query,
            b"SELECT n.name AS name MATCH (n:Person)",
        ))
        .unwrap();
    assert_eq!(read_one_frame(&mut stream).kind, FrameKind::Header);
    server.wait();
}

/// Blocking read of exactly one frame off a raw test stream.
fn read_one_frame(stream: &mut TcpStream) -> Frame {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut header = [0u8; 5];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
    let mut rest = vec![0u8; len + 8];
    stream.read_exact(&mut rest).unwrap();
    let mut bytes = header.to_vec();
    bytes.extend_from_slice(&rest);
    decode_frame_exact(&bytes).expect("server frames are well-formed")
}
