//! `gcore-serve` — a multi-client TCP server and client library for
//! the G-CORE engine (std-only: `TcpListener`, a fixed thread pool,
//! and a length-prefixed binary protocol following the `gcore-store`
//! codec conventions).
//!
//! The server multiplexes many clients over one shared
//! [`Engine`](gcore::Engine) with three routes:
//!
//! * **query** — one read-only statement, evaluated on a snapshot
//!   pinned per statement; results stream back as checksummed frames.
//! * **transact** — a write script serialized through the engine's
//!   catalog front; each commit bumps the epoch that later queries and
//!   connections observe.
//! * **admin** — catalog listing, server stats, plan explanation,
//!   save/load against a storage directory, ping, per-connection
//!   statement timeouts, Prometheus-style metrics text, and the
//!   slow-query log.
//!
//! Connections past the cap are turned away with a `Busy` error frame;
//! shutdown drains in-flight statements. The protocol error codes
//! (`S000`–`S007`) are tabulated in `docs/DIAGNOSTICS.md`.
//!
//! ```
//! use gcore_serve::{Client, ServeConfig, Server};
//! use gcore_ppg::{Attributes, GraphBuilder};
//!
//! let mut engine = gcore::Engine::new();
//! let mut b = GraphBuilder::new(engine.catalog().ids().clone());
//! b.node(Attributes::labeled("Person").with_prop("name", "Ada"));
//! engine.register_graph("people", b.build());
//! engine.set_default_graph("people");
//!
//! let server = Server::start(engine, ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.query("SELECT n.name AS name MATCH (n:Person)").unwrap();
//! let table = reply.output.unwrap().into_table().unwrap();
//! assert_eq!(table.len(), 1);
//! server.wait();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, Reply};
pub use error::ServeError;
pub use protocol::{
    AdminRequest, AdminResponse, ErrorCode, Frame, FrameKind, GraphListing, OutputSort,
    PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, ServerHandle};
pub use stats::{LatencyBuckets, ServerStats, SlowLog, SlowLogEntry, StatsSnapshot};
