//! The `gcore-serve` binary: boot an engine (empty, from a data
//! directory, or seeded with an SNB network) and serve it over TCP.
//!
//! Every flag has a `GCORE_SERVE_*` environment fallback so the server
//! configures cleanly under a process supervisor; flags win over the
//! environment. See `--help`.

use gcore::Engine;
use gcore_serve::{ServeConfig, Server};
use gcore_snb::{generate, SnbConfig};
use gcore_store::DirBackend;
use std::path::PathBuf;
use std::time::Duration;

const HELP: &str = "\
gcore-serve — multi-client TCP server for the G-CORE engine

USAGE:
    gcore-serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>        Bind address        [env: GCORE_SERVE_ADDR]    [default: 127.0.0.1:7687]
    --threads <N>             Worker threads      [env: GCORE_SERVE_THREADS] [default: 4]
    --max-connections <N>     Connection cap      [env: GCORE_SERVE_MAX_CONNECTIONS] [default: threads]
    --max-pending <N>         Shed (busy-reject) admitted connections once
                              this many are queued waiting for a worker
                                                  [env: GCORE_SERVE_MAX_PENDING] [default: unbounded]
    --timeout-ms <MS>         Statement timeout   [env: GCORE_SERVE_TIMEOUT_MS] [default: off; 0 = off]
    --slow-ms <MS>            Slow-query threshold: profile every query and
                              log statements at or over it to the admin
                              slowlog route     [env: GCORE_SERVE_SLOW_MS] [default: off; 0 = off]
    --slowlog-capacity <N>    Slow-query log ring size
                                                  [env: GCORE_SERVE_SLOWLOG_CAPACITY] [default: 64]
    --data-dir <DIR>          Storage directory; loaded at boot when it
                              holds a catalog, and backs admin save/load
                                                  [env: GCORE_SERVE_DATA_DIR]
    --snb <PERSONS>           Seed an SNB social network of this scale
                              when no stored catalog is loaded
                                                  [env: GCORE_SERVE_SNB]
    -h, --help                Print this help
";

struct Options {
    addr: String,
    threads: usize,
    max_connections: Option<usize>,
    max_pending: Option<usize>,
    timeout_ms: Option<u64>,
    slow_ms: Option<u64>,
    slowlog_capacity: Option<usize>,
    data_dir: Option<PathBuf>,
    snb: Option<usize>,
}

fn env_opt(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.is_empty())
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        addr: env_opt("GCORE_SERVE_ADDR").unwrap_or_else(|| "127.0.0.1:7687".to_owned()),
        threads: parse_env("GCORE_SERVE_THREADS")?.unwrap_or(4),
        max_connections: parse_env("GCORE_SERVE_MAX_CONNECTIONS")?,
        max_pending: parse_env("GCORE_SERVE_MAX_PENDING")?,
        timeout_ms: parse_env("GCORE_SERVE_TIMEOUT_MS")?,
        slow_ms: parse_env("GCORE_SERVE_SLOW_MS")?,
        slowlog_capacity: parse_env("GCORE_SERVE_SLOWLOG_CAPACITY")?,
        data_dir: env_opt("GCORE_SERVE_DATA_DIR").map(PathBuf::from),
        snb: parse_env("GCORE_SERVE_SNB")?,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--threads" => opts.threads = parse_num(&value("--threads")?, "--threads")?,
            "--max-connections" => {
                opts.max_connections = Some(parse_num(
                    &value("--max-connections")?,
                    "--max-connections",
                )?);
            }
            "--max-pending" => {
                opts.max_pending = Some(parse_num(&value("--max-pending")?, "--max-pending")?);
            }
            "--timeout-ms" => {
                opts.timeout_ms = Some(parse_num(&value("--timeout-ms")?, "--timeout-ms")?);
            }
            "--slow-ms" => {
                opts.slow_ms = Some(parse_num(&value("--slow-ms")?, "--slow-ms")?);
            }
            "--slowlog-capacity" => {
                opts.slowlog_capacity = Some(parse_num(
                    &value("--slowlog-capacity")?,
                    "--slowlog-capacity",
                )?);
            }
            "--data-dir" => opts.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--snb" => opts.snb = Some(parse_num(&value("--snb")?, "--snb")?),
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other} (see --help)")),
        }
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: `{raw}` is not a valid number"))
}

fn parse_env<T: std::str::FromStr>(name: &str) -> Result<Option<T>, String> {
    env_opt(name)
        .map(|raw| {
            raw.parse()
                .map_err(|_| format!("{name}: `{raw}` is not a valid number"))
        })
        .transpose()
}

fn boot_engine(opts: &Options) -> Result<Engine, String> {
    if let Some(dir) = &opts.data_dir {
        let backend =
            DirBackend::new(dir).map_err(|e| format!("opening {}: {e}", dir.display()))?;
        match Engine::open_from(&backend) {
            Ok(engine) => {
                eprintln!(
                    "loaded catalog from {} (epoch {})",
                    dir.display(),
                    engine.snapshot_epoch()
                );
                return Ok(engine);
            }
            Err(e) => {
                // A fresh data directory has no manifest yet; anything
                // else (corruption, version skew) is fatal.
                if backend_is_empty(&backend) {
                    eprintln!("{} is empty, starting fresh", dir.display());
                } else {
                    return Err(format!("loading {}: {e}", dir.display()));
                }
            }
        }
    }
    let mut engine = Engine::new();
    if let Some(persons) = opts.snb {
        let data = generate(&SnbConfig::scale(persons), &engine.catalog().ids().clone());
        engine.register_graph("snb", data.graph);
        engine.set_default_graph("snb");
        eprintln!("seeded SNB network with {persons} persons");
    }
    Ok(engine)
}

fn backend_is_empty(backend: &DirBackend) -> bool {
    use gcore_store::StorageBackend;
    backend.list().map(|keys| keys.is_empty()).unwrap_or(false)
}

fn main() {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(message) => {
            eprintln!("gcore-serve: {message}");
            std::process::exit(2);
        }
    };
    let engine = match boot_engine(&opts) {
        Ok(e) => e,
        Err(message) => {
            eprintln!("gcore-serve: {message}");
            std::process::exit(1);
        }
    };
    let config = ServeConfig {
        addr: opts.addr.clone(),
        threads: opts.threads,
        max_connections: opts.max_connections.unwrap_or(opts.threads),
        max_pending: opts.max_pending.unwrap_or(usize::MAX),
        statement_timeout: match opts.timeout_ms {
            None | Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
        },
        data_dir: opts.data_dir.clone(),
        slow_threshold: match opts.slow_ms {
            None | Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
        },
        slowlog_capacity: opts.slowlog_capacity.unwrap_or(64),
        ..ServeConfig::default()
    };
    let handle = match Server::start(engine, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gcore-serve: binding {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!("gcore-serve listening on {}", handle.addr());
    handle.serve_forever();
}
