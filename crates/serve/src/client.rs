//! The client library: a blocking, synchronous connection speaking the
//! frame protocol. Used by the test suites, the load-generator bench
//! and anything else that wants engine answers over TCP.

use crate::error::ServeError;
use crate::protocol::{
    decode_error, decode_frame, decode_header, decode_hello, encode_frame, AdminRequest,
    AdminResponse, ErrorCode, Frame, FrameKind, GraphListing, OutputSort, FRAME_CHECKSUM_LEN,
    FRAME_HEADER_LEN, HANDSHAKE_MAGIC, MAX_FRAME_PAYLOAD, PROTOCOL_VERSION,
};
use crate::stats::SlowLogEntry;
use gcore::QueryOutput;
use gcore_parser::{parse_statement, Statement};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One answered statement: the epoch its snapshot was pinned at (query)
/// or committed to (transact), plus the decoded output.
#[derive(Clone, Debug)]
pub struct Reply {
    /// The server's snapshot epoch for this statement.
    pub epoch: u64,
    /// The decoded result. `None` for an empty transact script.
    pub output: Option<QueryOutput>,
}

/// A connected client. One statement in flight at a time (the protocol
/// is strictly request/response).
pub struct Client {
    stream: TcpStream,
    /// The epoch the server greeted us with.
    hello_epoch: u64,
}

impl Client {
    /// Connect, handshake, and read the server's greeting.
    ///
    /// # Errors
    ///
    /// I/O failures, a `Busy` rejection, or a protocol violation.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut hello = Vec::with_capacity(12);
        hello.extend_from_slice(&HANDSHAKE_MAGIC);
        hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        stream.write_all(&hello)?;
        let mut client = Client {
            stream,
            hello_epoch: 0,
        };
        let frame = client.read_frame()?;
        match frame.kind {
            FrameKind::Hello => {
                let (version, epoch) = decode_hello(&frame.payload)?;
                if version != PROTOCOL_VERSION {
                    return Err(ServeError::Protocol(format!(
                        "server speaks protocol {version}, client speaks {PROTOCOL_VERSION}"
                    )));
                }
                client.hello_epoch = epoch;
                Ok(client)
            }
            FrameKind::Error => Err(Self::remote(&frame.payload)?),
            other => Err(ServeError::Protocol(format!(
                "expected a hello, got {other:?}"
            ))),
        }
    }

    /// The snapshot epoch the server reported at connect time.
    pub fn hello_epoch(&self) -> u64 {
        self.hello_epoch
    }

    /// Evaluate one read-only statement on a pinned snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn query(&mut self, text: &str) -> Result<Reply, ServeError> {
        self.send(FrameKind::Query, text.as_bytes())?;
        self.read_reply()
    }

    /// Run a write script serialized through the server's catalog
    /// front; the reply carries the post-commit epoch.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn transact(&mut self, text: &str) -> Result<Reply, ServeError> {
        self.send(FrameKind::Transact, text.as_bytes())?;
        self.read_reply()
    }

    /// Route a statement the way `Engine::run` would: `GRAPH VIEW`
    /// definitions go through **transact** (they commit), anything else
    /// through **query**. Unparseable text goes through **query** so
    /// the server's diagnostic comes back verbatim.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn run(&mut self, text: &str) -> Result<Reply, ServeError> {
        match parse_statement(text) {
            Ok(Statement::GraphView { .. }) => self.transact(text),
            _ => self.query(text),
        }
    }

    // -- admin ---------------------------------------------------------

    /// List the server's registered graphs, tables and default graph.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn list_graphs(&mut self) -> Result<GraphListing, ServeError> {
        match self.admin(&AdminRequest::ListGraphs)? {
            AdminResponse::Graphs(listing) => Ok(listing),
            other => Err(Self::unexpected_admin(&other)),
        }
    }

    /// The server's counters as sorted (name, value) pairs.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ServeError> {
        match self.admin(&AdminRequest::Stats)? {
            AdminResponse::Stats(counters) => Ok(counters),
            other => Err(Self::unexpected_admin(&other)),
        }
    }

    /// The server's rendered plan for a statement.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn explain(&mut self, text: &str) -> Result<String, ServeError> {
        match self.admin(&AdminRequest::Explain(text.to_owned()))? {
            AdminResponse::Explain(plan) => Ok(plan),
            other => Err(Self::unexpected_admin(&other)),
        }
    }

    /// Ask the server to persist its committed catalog; returns the
    /// saved epoch.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame (notably
    /// `S005` when the server runs without storage).
    pub fn save(&mut self) -> Result<u64, ServeError> {
        match self.admin(&AdminRequest::Save)? {
            AdminResponse::Epoch(epoch) => Ok(epoch),
            other => Err(Self::unexpected_admin(&other)),
        }
    }

    /// Ask the server to reload its catalog from storage; returns the
    /// post-reload epoch.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn load(&mut self) -> Result<u64, ServeError> {
        match self.admin(&AdminRequest::Load)? {
            AdminResponse::Epoch(epoch) => Ok(epoch),
            other => Err(Self::unexpected_admin(&other)),
        }
    }

    /// Health check; returns the server's current snapshot epoch.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn ping(&mut self) -> Result<u64, ServeError> {
        match self.admin(&AdminRequest::Ping)? {
            AdminResponse::Epoch(epoch) => Ok(epoch),
            other => Err(Self::unexpected_admin(&other)),
        }
    }

    /// The server's unified metrics as Prometheus-style text: server
    /// counters and latency histograms under `gcore_`, the engine's
    /// core metrics (planner, cancellation, SCC-cache) under
    /// `gcore_engine_`.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        match self.admin(&AdminRequest::Metrics)? {
            AdminResponse::Text(text) => Ok(text),
            other => Err(Self::unexpected_admin(&other)),
        }
    }

    /// The server's slow-query log, oldest entry first. Empty unless
    /// the server runs with a slow-query threshold (`--slow-ms`).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn slowlog(&mut self) -> Result<Vec<SlowLogEntry>, ServeError> {
        match self.admin(&AdminRequest::SlowLog)? {
            AdminResponse::SlowLog(entries) => Ok(entries),
            other => Err(Self::unexpected_admin(&other)),
        }
    }

    /// Set this connection's statement timeout in milliseconds (0
    /// disables it).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error frame.
    pub fn set_statement_timeout_ms(&mut self, ms: u64) -> Result<(), ServeError> {
        match self.admin(&AdminRequest::SetTimeout(ms))? {
            AdminResponse::Ok => Ok(()),
            other => Err(Self::unexpected_admin(&other)),
        }
    }

    fn admin(&mut self, request: &AdminRequest) -> Result<AdminResponse, ServeError> {
        self.send(FrameKind::Admin, &request.encode())?;
        let frame = self.read_frame()?;
        match frame.kind {
            FrameKind::AdminOk => AdminResponse::decode(&frame.payload),
            FrameKind::Error => Err(Self::remote(&frame.payload)?),
            other => Err(ServeError::Protocol(format!(
                "expected an admin reply, got {other:?}"
            ))),
        }
    }

    // -- transport -----------------------------------------------------

    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<(), ServeError> {
        if payload.len() > MAX_FRAME_PAYLOAD as usize {
            return Err(ServeError::Protocol(format!(
                "request of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame cap",
                payload.len()
            )));
        }
        self.stream.write_all(&encode_frame(kind, payload))?;
        Ok(())
    }

    /// Read exactly one frame off the socket.
    fn read_frame(&mut self) -> Result<Frame, ServeError> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[1..5].try_into().unwrap());
        if len > MAX_FRAME_PAYLOAD {
            return Err(ServeError::Protocol(format!(
                "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
            )));
        }
        let mut rest = vec![0u8; len as usize + FRAME_CHECKSUM_LEN];
        self.read_exact(&mut rest)?;
        let mut bytes = Vec::with_capacity(header.len() + rest.len());
        bytes.extend_from_slice(&header);
        bytes.extend_from_slice(&rest);
        let (frame, _) = decode_frame(&bytes)?;
        Ok(frame)
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), ServeError> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => return Err(ServeError::ConnectionClosed),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Accumulate a Header + Chunk* + Done stream into a [`Reply`].
    fn read_reply(&mut self) -> Result<Reply, ServeError> {
        let first = self.read_frame()?;
        let (epoch, sort) = match first.kind {
            FrameKind::Header => decode_header(&first.payload)?,
            FrameKind::Error => return Err(Self::remote(&first.payload)?),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected a response header, got {other:?}"
                )))
            }
        };
        let mut body = Vec::new();
        loop {
            let frame = self.read_frame()?;
            match frame.kind {
                FrameKind::Chunk => body.extend_from_slice(&frame.payload),
                FrameKind::Done => break,
                FrameKind::Error => return Err(Self::remote(&frame.payload)?),
                other => {
                    return Err(ServeError::Protocol(format!(
                        "expected a chunk, got {other:?}"
                    )))
                }
            }
        }
        if body.is_empty() {
            return Ok(Reply {
                epoch,
                output: None,
            });
        }
        let output = match sort {
            OutputSort::Table => QueryOutput::Table(
                gcore_store::decode_table(&body)
                    .map_err(|e| ServeError::Protocol(format!("decoding table: {e}")))?,
            ),
            OutputSort::Graph => QueryOutput::Graph(
                gcore_store::decode_graph(&body)
                    .map_err(|e| ServeError::Protocol(format!("decoding graph: {e}")))?,
            ),
        };
        Ok(Reply {
            epoch,
            output: Some(output),
        })
    }

    /// Decode a server error frame into [`ServeError::Remote`].
    fn remote(payload: &[u8]) -> Result<ServeError, ServeError> {
        let (code, message) = decode_error(payload)?;
        Ok(ServeError::Remote { code, message })
    }

    fn unexpected_admin(got: &AdminResponse) -> ServeError {
        ServeError::Remote {
            code: ErrorCode::Internal,
            message: format!("unexpected admin response {got:?}"),
        }
    }
}
