//! The server: a `TcpListener` accept loop feeding a fixed worker
//! pool, every worker speaking the frame protocol over one connection
//! at a time against a shared [`Engine`].
//!
//! ## Concurrency model
//!
//! The engine sits behind one mutex, but the lock is held only for
//! catalog work: a **query** locks just long enough to clone an
//! `Arc`-backed [`QueryExecutor`] (pinning that statement's snapshot)
//! and evaluates outside the lock, so reads from many connections run
//! concurrently against immutable snapshots. A **transact** holds the
//! lock for its whole script — writes are serialized through the
//! catalog front exactly as in-process callers are, and each commit
//! bumps the epoch that subsequent queries observe.
//!
//! ## Admission control
//!
//! The connection cap is enforced **at accept time**: the accept loop
//! reserves a slot (an RAII `Reservation` on the shared admitted
//! counter) before the connection ever enters the worker queue, so a
//! simultaneous-connect burst can never overshoot `max_connections` —
//! there is no window between "checked the cap" and "counted the
//! connection". Admitted connections wait in a bounded pending queue;
//! when the backlog exceeds the `max_pending` watermark the connection
//! is shed with [`ErrorCode::Busy`] instead of queuing behind work it
//! would time out waiting for. Both rejections and sheds are counted
//! separately in [`ServerStats`].
//!
//! ## Cancellation
//!
//! Statement timeouts are **cooperative**: the worker installs the
//! connection's deadline on the statement's executor
//! ([`QueryExecutor::set_statement_deadline`]) and evaluates inline —
//! on expiry the evaluation unwinds at its next loop boundary and the
//! worker returns to the pool. No detached threads, no orphaned
//! evaluations burning cores behind the fixed pool.
//!
//! ## Lifecycle
//!
//! [`Server::start`] binds, spawns the accept thread and workers, and
//! returns a [`ServerHandle`]. Connections over the cap are greeted
//! with a [`ErrorCode::Busy`] error frame and closed. Shutdown flips a
//! flag, wakes the accept loop, stops accepting, and drains: statements
//! already executing run to completion; idle connections are closed at
//! their next poll tick.

use crate::protocol::{
    decode_frame, encode_error, encode_frame, encode_header, encode_hello, AdminRequest,
    AdminResponse, ErrorCode, Frame, FrameKind, GraphListing, OutputSort, CHUNK_PAYLOAD,
    FRAME_CHECKSUM_LEN, FRAME_HEADER_LEN, HANDSHAKE_MAGIC, MAX_FRAME_PAYLOAD, PROTOCOL_VERSION,
};
use crate::stats::{as_micros, ServerStats, SlowLog, SlowLogEntry, StatsSnapshot};
use gcore::obs::MetricsRegistry;
use gcore::{Engine, QueryExecutor, QueryOutput, QueryProfile};
use gcore_store::{DirBackend, StorageBackend};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server is wired up. `Default` is suitable for tests: an
/// ephemeral loopback port, a small pool, no timeouts, no storage.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads — the number of connections served concurrently.
    pub threads: usize,
    /// Connection cap; beyond it new connections get a `Busy` error.
    /// Defaults to `threads` (a queued connection would silently wait
    /// for a worker, which a closed-loop client can't distinguish from
    /// a hung server).
    pub max_connections: usize,
    /// Shedding watermark on the pending queue: a connection admitted
    /// under the cap is still `Busy`-rejected when this many admitted
    /// connections are already waiting for a worker. The default
    /// (`usize::MAX`) bounds the backlog only by `max_connections`;
    /// set it below `max_connections - threads` to shed early under
    /// bursty load instead of queueing work that will time out anyway.
    pub max_pending: usize,
    /// Default per-statement wall-clock budget for queries. `None`
    /// disables it; connections can override via
    /// [`AdminRequest::SetTimeout`].
    pub statement_timeout: Option<Duration>,
    /// How long a connection may dribble one frame before it is
    /// dropped as hostile.
    pub frame_deadline: Duration,
    /// Directory backing the admin save/load routes. `None` makes
    /// those routes answer with a `Storage` error.
    pub data_dir: Option<PathBuf>,
    /// Slow-query threshold. When set, every query is profiled and
    /// statements at or over the threshold enter the slow-query log
    /// (readable over the admin `slowlog` route) with their rendered
    /// execution profile. `None` (the default) disables the log and
    /// the per-statement profiling that feeds it.
    pub slow_threshold: Option<Duration>,
    /// Capacity of the slow-query log ring; older entries are evicted.
    pub slowlog_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            max_connections: 4,
            max_pending: usize::MAX,
            statement_timeout: None,
            frame_deadline: Duration::from_secs(30),
            data_dir: None,
            slow_threshold: None,
            slowlog_capacity: 64,
        }
    }
}

/// Poll interval for reads: short enough that shutdown and the frame
/// deadline are noticed promptly, long enough to stay off the CPU.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// State shared by the accept loop and every worker.
struct Shared {
    engine: Mutex<Engine>,
    stats: ServerStats,
    shutdown: AtomicBool,
    /// Admitted connections — queued or being served. Reserved (by
    /// [`Reservation::try_acquire`]) in the accept loop *before* the
    /// cap check's answer is acted on, so the cap is exact under
    /// simultaneous connect bursts.
    active: AtomicUsize,
    /// Admitted connections waiting for a worker. Incremented by the
    /// accept loop at enqueue, decremented by the worker at pickup.
    pending: AtomicUsize,
    default_timeout: Option<Duration>,
    frame_deadline: Duration,
    max_connections: usize,
    max_pending: usize,
    backend: Option<DirBackend>,
    /// The engine's core metrics registry (planner/cancellation
    /// counters), rendered by the admin `metrics` route alongside the
    /// server's own registry. Cloned out of the engine at start so the
    /// route never needs the engine lock for counter reads.
    core_registry: Arc<MetricsRegistry>,
    /// Slow-query threshold; `Some` also turns on per-query profiling.
    slow_threshold: Option<Duration>,
    slowlog: SlowLog,
}

impl Shared {
    /// Lock the engine, recovering from poisoning. A statement panic
    /// under the lock leaves the engine consistent — snapshots are
    /// immutable `Arc`s and catalog persistence commits manifest-last —
    /// so serving must survive it rather than cascade the panic into
    /// every later connection.
    fn lock_engine(&self) -> std::sync::MutexGuard<'_, Engine> {
        self.engine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// An RAII slot on [`Shared::active`]: acquired by the accept loop
/// under the connection cap, released (on drop) when the connection
/// finishes serving — or immediately, when the backlog sheds it.
struct Reservation {
    shared: Arc<Shared>,
}

impl Reservation {
    /// Reserve an admitted-connection slot via compare-and-swap;
    /// `None` when the cap is already fully reserved.
    fn try_acquire(shared: &Arc<Shared>) -> Option<Reservation> {
        let mut current = shared.active.load(Ordering::SeqCst);
        loop {
            if current >= shared.max_connections {
                return None;
            }
            match shared.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        let reservation = Reservation {
            shared: Arc::clone(shared),
        };
        reservation.publish_gauge();
        Some(reservation)
    }

    fn publish_gauge(&self) {
        self.shared.stats.connections_active.store(
            self.shared.active.load(Ordering::SeqCst) as u64,
            Ordering::Relaxed,
        );
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
        self.publish_gauge();
    }
}

/// The running server. Dropping the handle shuts the server down and
/// joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// The server namespace: construction lives in [`Server::start`].
pub struct Server;

impl Server {
    /// Bind, spawn the accept loop and `config.threads` workers, and
    /// hand back the running server.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, e.g. a taken port.
    pub fn start(engine: Engine, config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let threads = config.threads.max(1);
        let core_registry = Arc::clone(engine.metrics_registry());
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            stats: ServerStats::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            default_timeout: config.statement_timeout,
            frame_deadline: config.frame_deadline,
            max_connections: config.max_connections.max(1),
            max_pending: config.max_pending,
            backend: match &config.data_dir {
                Some(dir) => {
                    Some(DirBackend::new(dir).map_err(|e| std::io::Error::other(e.to_string()))?)
                }
                None => None,
            },
            core_registry,
            slow_threshold: config.slow_threshold,
            slowlog: SlowLog::new(config.slowlog_capacity),
        });

        let (tx, rx) = mpsc::channel::<(TcpStream, Reservation)>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("gcore-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("gcore-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared, &tx))
            .expect("spawn accept loop");

        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Deliberately poison the engine lock by panicking while holding
    /// it on a scratch thread. Test hook for the poison-recovery path;
    /// not part of the public API.
    #[doc(hidden)]
    pub fn poison_engine_lock_for_tests(&self) {
        let shared = Arc::clone(&self.shared);
        let poisoner = std::thread::spawn(move || {
            let _guard = shared.lock_engine();
            panic!("poisoning engine lock for tests");
        });
        let _ = poisoner.join(); // the Err is the point
    }

    /// Begin shutdown: stop accepting, drain in-flight statements.
    /// Idempotent; returns immediately (join with [`ServerHandle::wait`]
    /// or by dropping the handle).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept call so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Shut down (if not already) and block until every thread exits.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Block serving until another thread calls [`ServerHandle::shutdown`]
    /// or the process dies — unlike [`ServerHandle::wait`], this does
    /// *not* initiate shutdown itself. This is what a daemon binary
    /// wants after printing its listening address.
    pub fn serve_forever(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    fn join_all(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_all();
    }
}

// ---------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<(TcpStream, Reservation)>,
) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // drains on return: tx drops, workers finish and exit
        }
        let Ok(stream) = conn else { continue };
        ServerStats::bump(&shared.stats.connections_accepted);
        // Reserve before enqueueing: the slot is held from here until
        // the worker finishes the connection, so the cap cannot be
        // overshot between the check and the count.
        let Some(reservation) = Reservation::try_acquire(shared) else {
            ServerStats::bump(&shared.stats.connections_rejected_busy);
            reject(
                stream,
                ErrorCode::Busy,
                "connection cap reached, retry later",
            );
            continue;
        };
        // Queue-depth shedding: admitted under the cap, but the worker
        // backlog is already at the watermark — turn the client away
        // now rather than let it queue behind work it would time out
        // waiting for. Dropping the reservation frees the slot.
        if shared.pending.load(Ordering::SeqCst) >= shared.max_pending {
            ServerStats::bump(&shared.stats.connections_shed_queue_full);
            drop(reservation);
            reject(stream, ErrorCode::Busy, "server backlog full, retry later");
            continue;
        }
        shared.pending.fetch_add(1, Ordering::SeqCst);
        shared.stats.connections_pending.store(
            shared.pending.load(Ordering::SeqCst) as u64,
            Ordering::Relaxed,
        );
        if tx.send((stream, reservation)).is_err() {
            break;
        }
    }
}

/// Best-effort single error frame to a connection we will not serve.
fn reject(mut stream: TcpStream, code: ErrorCode, message: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(&encode_frame(
        FrameKind::Error,
        &encode_error(code, message),
    ));
}

// ---------------------------------------------------------------------
// Worker loop and per-connection state
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<mpsc::Receiver<(TcpStream, Reservation)>>>) {
    loop {
        // Take the stream out of the channel lock before serving it, so
        // one long connection never blocks the other workers' intake.
        let (stream, reservation) = match rx.lock().unwrap().recv() {
            Ok(pair) => pair,
            Err(_) => return, // sender dropped: accept loop exited
        };
        shared.pending.fetch_sub(1, Ordering::SeqCst);
        shared.stats.connections_pending.store(
            shared.pending.load(Ordering::SeqCst) as u64,
            Ordering::Relaxed,
        );
        // Panic isolation: a statement that panics must cost its own
        // connection, not a pool thread — the pool is fixed-size, so an
        // escaped panic would permanently shrink serving capacity.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Connection::new(shared, stream).serve()
        }));
        drop(reservation); // frees the admitted slot
    }
}

/// Why a connection stopped being served.
enum Close {
    /// Peer hung up, protocol violation, or server shutdown.
    Done,
}

struct Connection<'a> {
    shared: &'a Arc<Shared>,
    stream: TcpStream,
    /// This connection's statement timeout (admin-overridable).
    timeout: Option<Duration>,
}

impl<'a> Connection<'a> {
    fn new(shared: &'a Arc<Shared>, stream: TcpStream) -> Self {
        let timeout = shared.default_timeout;
        Connection {
            shared,
            stream,
            timeout,
        }
    }

    fn serve(mut self) -> Close {
        let _ = self.stream.set_nodelay(true);
        let _ = self.stream.set_read_timeout(Some(POLL_INTERVAL));
        let _ = self.stream.set_write_timeout(Some(Duration::from_secs(30)));

        if !self.handshake() {
            return Close::Done;
        }
        let epoch = self.shared.lock_engine().snapshot_epoch();
        if self
            .send_frame(FrameKind::Hello, &encode_hello(epoch))
            .is_err()
        {
            return Close::Done;
        }

        loop {
            let frame = match self.read_frame() {
                ReadOutcome::Frame(f) => f,
                ReadOutcome::Closed => return Close::Done,
                ReadOutcome::Shutdown => {
                    let _ = self.send_error(ErrorCode::ShuttingDown, "server is shutting down");
                    return Close::Done;
                }
                ReadOutcome::Violation(msg) => {
                    ServerStats::bump(&self.shared.stats.protocol_errors);
                    let _ = self.send_error(ErrorCode::Protocol, &msg);
                    return Close::Done;
                }
            };
            let started = Instant::now();
            let keep_going = match frame.kind {
                FrameKind::Query => self.handle_query(&frame.payload),
                FrameKind::Transact => self.handle_transact(&frame.payload),
                FrameKind::Admin => self.handle_admin(&frame.payload),
                other => {
                    ServerStats::bump(&self.shared.stats.protocol_errors);
                    let _ = self.send_error(
                        ErrorCode::Protocol,
                        &format!("unexpected {other:?} frame from a client"),
                    );
                    false
                }
            };
            let histogram = match frame.kind {
                FrameKind::Query => Some(&self.shared.stats.latency_query),
                FrameKind::Transact => Some(&self.shared.stats.latency_transact),
                FrameKind::Admin => Some(&self.shared.stats.latency_admin),
                _ => None,
            };
            if let Some(histogram) = histogram {
                histogram.record(started.elapsed());
            }
            if !keep_going {
                return Close::Done;
            }
        }
    }

    /// Read and validate the raw 12-byte client hello.
    fn handshake(&mut self) -> bool {
        let mut hello = [0u8; 12];
        if self.read_exact_polled(&mut hello).is_err() {
            ServerStats::bump(&self.shared.stats.protocol_errors);
            return false;
        }
        if hello[..8] != HANDSHAKE_MAGIC {
            ServerStats::bump(&self.shared.stats.protocol_errors);
            let _ = self.send_error(ErrorCode::Protocol, "bad handshake magic");
            return false;
        }
        let version = u32::from_le_bytes(hello[8..12].try_into().unwrap());
        if version != PROTOCOL_VERSION {
            ServerStats::bump(&self.shared.stats.protocol_errors);
            let _ = self.send_error(
                ErrorCode::Protocol,
                &format!(
                    "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                ),
            );
            return false;
        }
        true
    }

    // -- framed reads --------------------------------------------------

    /// Fill `buf` with polled reads, honoring shutdown and the frame
    /// deadline once the first byte has arrived.
    fn read_exact_polled(&mut self, buf: &mut [u8]) -> Result<(), ReadStop> {
        let mut filled = 0usize;
        let mut started: Option<Instant> = None;
        while filled < buf.len() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Err(if filled == 0 && started.is_none() {
                    ReadStop::Shutdown
                } else {
                    // Mid-frame at shutdown: the request never became a
                    // statement, drop it.
                    ReadStop::Closed
                });
            }
            if let Some(t0) = started {
                if t0.elapsed() > self.shared.frame_deadline {
                    return Err(ReadStop::Violation("frame deadline exceeded".into()));
                }
            }
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(if filled == 0 {
                        ReadStop::Closed
                    } else {
                        ReadStop::Violation("connection closed mid-frame".into())
                    });
                }
                Ok(n) => {
                    filled += n;
                    started.get_or_insert_with(Instant::now);
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(ReadStop::Closed),
            }
        }
        Ok(())
    }

    /// Read one whole frame (header, payload, checksum) off the socket.
    fn read_frame(&mut self) -> ReadOutcome {
        let mut header = [0u8; FRAME_HEADER_LEN];
        match self.read_exact_polled(&mut header) {
            Ok(()) => {}
            Err(stop) => return stop.into(),
        }
        let len = u32::from_le_bytes(header[1..5].try_into().unwrap());
        if len > MAX_FRAME_PAYLOAD {
            return ReadOutcome::Violation(format!(
                "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
            ));
        }
        let mut rest = vec![0u8; len as usize + FRAME_CHECKSUM_LEN];
        match self.read_exact_polled(&mut rest) {
            Ok(()) => {}
            Err(stop) => return stop.into(),
        }
        let mut bytes = Vec::with_capacity(header.len() + rest.len());
        bytes.extend_from_slice(&header);
        bytes.extend_from_slice(&rest);
        match decode_frame(&bytes) {
            Ok((frame, _)) => ReadOutcome::Frame(frame),
            Err(e) => ReadOutcome::Violation(e.to_string()),
        }
    }

    // -- framed writes -------------------------------------------------

    fn send_frame(&mut self, kind: FrameKind, payload: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(&encode_frame(kind, payload))
    }

    fn send_error(&mut self, code: ErrorCode, message: &str) -> std::io::Result<()> {
        self.send_frame(FrameKind::Error, &encode_error(code, message))
    }

    /// Stream one query output: Header, chunked encoded body, Done.
    fn send_output(&mut self, epoch: u64, output: &QueryOutput) -> bool {
        let (sort, encoded) = match output {
            QueryOutput::Table(t) => (OutputSort::Table, gcore_store::encode_table(t)),
            QueryOutput::Graph(g) => (OutputSort::Graph, gcore_store::encode_graph(g)),
        };
        let encoded = match encoded {
            Ok(bytes) => bytes,
            Err(e) => {
                let _ = self.send_error(ErrorCode::Internal, &format!("encoding result: {e}"));
                return true; // the connection is still healthy
            }
        };
        if self
            .send_frame(FrameKind::Header, &encode_header(epoch, sort))
            .is_err()
        {
            return false;
        }
        for chunk in encoded.chunks(CHUNK_PAYLOAD.max(1)) {
            if self.send_frame(FrameKind::Chunk, chunk).is_err() {
                return false;
            }
        }
        self.send_frame(FrameKind::Done, &[]).is_ok()
    }

    // -- routes --------------------------------------------------------

    /// The **query** route: pin a snapshot, evaluate off-lock, stream.
    /// With a slow-query threshold configured the statement is profiled
    /// and, when it runs at or over the threshold, logged with its
    /// rendered execution profile.
    fn handle_query(&mut self, payload: &[u8]) -> bool {
        let Some(text) = self.utf8_or_reject(payload) else {
            return false;
        };
        // Pin this statement's snapshot; the lock is held only for the
        // clone, never for evaluation.
        let executor = { self.shared.lock_engine().executor() };
        let epoch = executor.epoch();
        let started = Instant::now();
        let evaluated = self.evaluate(executor, &text);
        if let Some(threshold) = self.shared.slow_threshold {
            let elapsed = started.elapsed();
            if elapsed >= threshold {
                ServerStats::bump(&self.shared.stats.slow_queries);
                let profile = match &evaluated {
                    Evaluated::Ok(_, Some(p)) => p.render(false),
                    _ => String::new(), // failed or cancelled before a profile
                };
                self.shared.slowlog.record(SlowLogEntry {
                    text,
                    epoch,
                    elapsed_us: as_micros(elapsed),
                    profile,
                });
            }
        }
        match evaluated {
            Evaluated::Ok(output, _) => {
                ServerStats::bump(&self.shared.stats.queries_ok);
                self.send_output(epoch, &output)
            }
            Evaluated::Err(message) => {
                ServerStats::bump(&self.shared.stats.queries_err);
                self.send_error(ErrorCode::Statement, &message).is_ok()
            }
            Evaluated::TimedOut => {
                ServerStats::bump(&self.shared.stats.statement_timeouts);
                ServerStats::bump(&self.shared.stats.statements_cancelled);
                self.send_error(ErrorCode::Timeout, "statement timeout exceeded")
                    .is_ok()
            }
        }
    }

    /// The **transact** route: run the script under the engine lock
    /// (writes serialize through the catalog front) and stream the last
    /// statement's output together with the post-commit epoch.
    fn handle_transact(&mut self, payload: &[u8]) -> bool {
        let Some(text) = self.utf8_or_reject(payload) else {
            return false;
        };
        let result = {
            let mut engine = self.shared.lock_engine();
            let r = engine.run_script(&text);
            (r, engine.snapshot_epoch())
        };
        match result {
            (Ok(outputs), epoch) => {
                ServerStats::bump(&self.shared.stats.transacts_ok);
                match outputs.into_iter().last() {
                    Some(output) => self.send_output(epoch, &output),
                    None => {
                        // An empty script commits nothing; still answer.
                        self.send_frame(FrameKind::Header, &encode_header(epoch, OutputSort::Table))
                            .and_then(|()| self.send_frame(FrameKind::Done, &[]))
                            .is_ok()
                    }
                }
            }
            (Err(e), _) => {
                ServerStats::bump(&self.shared.stats.transacts_err);
                self.send_error(ErrorCode::Statement, &e.to_string())
                    .is_ok()
            }
        }
    }

    /// The **admin** route.
    fn handle_admin(&mut self, payload: &[u8]) -> bool {
        ServerStats::bump(&self.shared.stats.admin_requests);
        // The frame itself was well-formed (kind, length, checksum all
        // validated), so a payload that fails to decode is a bad admin
        // argument, not a transport violation: answer S004, keep the
        // connection.
        let request = match AdminRequest::decode(payload) {
            Ok(r) => r,
            Err(e) => {
                return self.send_error(ErrorCode::Admin, &e.to_string()).is_ok();
            }
        };
        let response = match request {
            AdminRequest::Ping => {
                let epoch = self.shared.lock_engine().snapshot_epoch();
                Ok(AdminResponse::Epoch(epoch))
            }
            AdminRequest::ListGraphs => {
                let engine = self.shared.lock_engine();
                let catalog = engine.catalog();
                Ok(AdminResponse::Graphs(GraphListing {
                    graphs: catalog.graph_names(),
                    tables: catalog.table_names(),
                    default_graph: catalog.default_graph_name().map(str::to_owned),
                }))
            }
            AdminRequest::Stats => {
                // Engine-level pairs ride along with the server
                // counters: snapshot SCC-cache behavior and the epoch
                // under one brief lock. Old clients decode them into
                // `StatsSnapshot::extra`; older ones ignore them.
                let (hits, misses, evictions, epoch) = {
                    let mut engine = self.shared.lock_engine();
                    let (h, m, e) = engine.executor().snapshot().scc_cache_stats();
                    (h, m, e, engine.snapshot_epoch())
                };
                let mut named = self.shared.stats.snapshot().named();
                named.push(("engine_epoch".to_owned(), epoch));
                named.push(("scc_cache_evictions".to_owned(), evictions));
                named.push(("scc_cache_hits".to_owned(), hits));
                named.push(("scc_cache_misses".to_owned(), misses));
                named.sort();
                Ok(AdminResponse::Stats(named))
            }
            AdminRequest::Metrics => {
                // Refresh the engine-level gauges, then render both
                // registries: the server's counters under `gcore_` and
                // the engine's core metrics under `gcore_engine_`.
                let (hits, misses, evictions, epoch) = {
                    let mut engine = self.shared.lock_engine();
                    let (h, m, e) = engine.executor().snapshot().scc_cache_stats();
                    (h, m, e, engine.snapshot_epoch())
                };
                let core = &self.shared.core_registry;
                core.set_gauge("scc_cache_hits", hits);
                core.set_gauge("scc_cache_misses", misses);
                core.set_gauge("scc_cache_evictions", evictions);
                core.set_gauge("engine_epoch", epoch);
                let mut text = self.shared.stats.registry().render_prometheus("gcore");
                text.push_str(&core.render_prometheus("gcore_engine"));
                Ok(AdminResponse::Text(text))
            }
            AdminRequest::SlowLog => Ok(AdminResponse::SlowLog(self.shared.slowlog.entries())),
            AdminRequest::Explain(text) => {
                let executor = { self.shared.lock_engine().executor() };
                match executor.explain(&text) {
                    Ok(plan) => Ok(AdminResponse::Explain(plan)),
                    Err(e) => Err((ErrorCode::Statement, e.to_string())),
                }
            }
            AdminRequest::Save => match &self.shared.backend {
                None => Err((
                    ErrorCode::Storage,
                    "server started without --data-dir".to_owned(),
                )),
                Some(backend) => {
                    // Clone under the lock, write outside it: a slow
                    // disk must not stall writers.
                    let engine = { self.shared.lock_engine().clone() };
                    match engine.save_to(backend as &dyn StorageBackend) {
                        Ok(()) => Ok(AdminResponse::Epoch(engine.snapshot_epoch())),
                        Err(e) => Err((ErrorCode::Storage, e.to_string())),
                    }
                }
            },
            AdminRequest::Load => match &self.shared.backend {
                None => Err((
                    ErrorCode::Storage,
                    "server started without --data-dir".to_owned(),
                )),
                Some(backend) => {
                    let mut engine = self.shared.lock_engine();
                    match engine.reload_from(backend as &dyn StorageBackend) {
                        Ok(epoch) => Ok(AdminResponse::Epoch(epoch)),
                        Err(e) => Err((ErrorCode::Storage, e.to_string())),
                    }
                }
            },
            AdminRequest::SetTimeout(ms) => {
                self.timeout = if ms == 0 {
                    None
                } else {
                    Some(Duration::from_millis(ms))
                };
                Ok(AdminResponse::Ok)
            }
        };
        match response {
            Ok(resp) => self.send_frame(FrameKind::AdminOk, &resp.encode()).is_ok(),
            Err((code, message)) => self.send_error(code, &message).is_ok(),
        }
    }

    // -- helpers -------------------------------------------------------

    fn utf8_or_reject(&mut self, payload: &[u8]) -> Option<String> {
        match String::from_utf8(payload.to_vec()) {
            Ok(text) => Some(text),
            Err(_) => {
                ServerStats::bump(&self.shared.stats.protocol_errors);
                let _ = self.send_error(ErrorCode::Protocol, "statement text is not UTF-8");
                None
            }
        }
    }

    /// Evaluate one read-only statement on this worker thread, under
    /// the connection's statement timeout as a cooperative deadline.
    ///
    /// The deadline is installed on the executor and observed by the
    /// evaluation itself at its loop boundaries (pattern expansion,
    /// join partitions, path frontier pops), so expiry hands the worker
    /// straight back to the pool — there is no detached thread left
    /// burning a core on an answer nobody will read. The connection
    /// timeout (admin-overridable) always governs the query route,
    /// superseding any deadline baked into the engine by an embedder.
    fn evaluate(&self, mut executor: QueryExecutor, text: &str) -> Evaluated {
        executor.set_statement_deadline(self.timeout);
        if self.shared.slow_threshold.is_some() {
            // The slow-query log needs a profile for statements that
            // cross the threshold, which is only known afterwards — so
            // a configured threshold profiles every query. Profiling is
            // observation-only (pinned by the profile-equivalence
            // suite) and its overhead is a few percent.
            return match executor.run_profiled(text) {
                Ok((output, profile)) => Evaluated::Ok(Box::new(output), Some(Box::new(profile))),
                Err(e) if e.is_cancelled() => Evaluated::TimedOut,
                Err(e) => Evaluated::Err(e.to_string()),
            };
        }
        match executor.run(text) {
            Ok(output) => Evaluated::Ok(Box::new(output), None),
            Err(e) if e.is_cancelled() => Evaluated::TimedOut,
            Err(e) => Evaluated::Err(e.to_string()),
        }
    }
}

enum Evaluated {
    Ok(Box<QueryOutput>, Option<Box<QueryProfile>>),
    Err(String),
    TimedOut,
}

enum ReadOutcome {
    Frame(Frame),
    Closed,
    Shutdown,
    Violation(String),
}

enum ReadStop {
    Closed,
    Shutdown,
    Violation(String),
}

impl From<ReadStop> for ReadOutcome {
    fn from(stop: ReadStop) -> ReadOutcome {
        match stop {
            ReadStop::Closed => ReadOutcome::Closed,
            ReadStop::Shutdown => ReadOutcome::Shutdown,
            ReadStop::Violation(m) => ReadOutcome::Violation(m),
        }
    }
}
