//! Server counters: lock-free atomics bumped on the request path,
//! snapshotted for the admin `stats` route and for the load-generator
//! bench. Alongside the monotone counters, every route keeps a
//! log-bucketed latency histogram ([`LatencyHistogram`]): one relaxed
//! `fetch_add` per request, no locks, exported through the same named
//! wire pairs so old clients simply ignore the new names.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket `i` counts requests whose
/// latency lies in `[2^i, 2^{i+1})` microseconds, the last bucket
/// absorbing everything slower (~36 minutes and beyond).
pub const LATENCY_BUCKETS: usize = 32;

/// A lock-free log₂-bucketed latency histogram. Recording is one
/// relaxed `fetch_add`; concurrent recorders never contend beyond the
/// cache line.
#[derive(Default, Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Count one request of the given latency.
    pub fn record(&self, elapsed: Duration) {
        // Sub-microsecond requests land in bucket 0; ilog2 of the
        // microsecond count picks the bucket, capped at the last.
        let us = u64::try_from(elapsed.as_micros())
            .unwrap_or(u64::MAX)
            .max(1);
        let bucket = (us.ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// An instantaneous copy of the bucket counts.
    pub fn snapshot(&self) -> LatencyBuckets {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        LatencyBuckets(out)
    }
}

/// A point-in-time copy of one route's latency buckets; index `i`
/// counts requests in `[2^i, 2^{i+1})` µs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LatencyBuckets(pub [u64; LATENCY_BUCKETS]);

impl LatencyBuckets {
    /// Total requests recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.iter().sum()
    }

    /// An upper bound (in µs) on the latency of the `q`-quantile
    /// request: the top of the first bucket whose cumulative count
    /// reaches `q` of the total. `None` when nothing was recorded.
    #[must_use]
    pub fn quantile_upper_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let needed = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.0.iter().enumerate() {
            seen += c;
            if seen >= needed {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        Some(u64::MAX)
    }
}

/// Monotone counters shared by every server thread. All loads/stores
/// are `Relaxed`: the counters are observability, not synchronization.
#[derive(Default, Debug)]
pub struct ServerStats {
    /// Connections accepted (including ones later rejected as busy).
    pub connections_accepted: AtomicU64,
    /// Connections turned away at the connection cap.
    pub connections_rejected_busy: AtomicU64,
    /// Connections shed because the pending queue was over its
    /// watermark — admitted under the cap, but the worker backlog was
    /// already too deep to serve them within any useful latency.
    pub connections_shed_queue_full: AtomicU64,
    /// Connections currently being served.
    pub connections_active: AtomicU64,
    /// Connections admitted but waiting for a worker to pick them up.
    pub connections_pending: AtomicU64,
    /// Query statements answered successfully.
    pub queries_ok: AtomicU64,
    /// Query statements answered with a statement error.
    pub queries_err: AtomicU64,
    /// Transact scripts committed successfully.
    pub transacts_ok: AtomicU64,
    /// Transact scripts answered with a statement error.
    pub transacts_err: AtomicU64,
    /// Statements cut off by the statement timeout.
    pub statement_timeouts: AtomicU64,
    /// Statements whose evaluation was cooperatively cancelled and
    /// whose worker thread returned to the pool. Every timeout is also
    /// a cancellation, so this tracks `statement_timeouts` unless a
    /// future route cancels for other reasons.
    pub statements_cancelled: AtomicU64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: AtomicU64,
    /// Admin requests served (all ops).
    pub admin_requests: AtomicU64,
    /// Latency of the query route (request read to reply written).
    pub latency_query: LatencyHistogram,
    /// Latency of the transact route.
    pub latency_transact: LatencyHistogram,
    /// Latency of the admin route.
    pub latency_admin: LatencyHistogram,
}

impl ServerStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An instantaneous copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected_busy: self.connections_rejected_busy.load(Ordering::Relaxed),
            connections_shed_queue_full: self.connections_shed_queue_full.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            connections_pending: self.connections_pending.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_err: self.queries_err.load(Ordering::Relaxed),
            transacts_ok: self.transacts_ok.load(Ordering::Relaxed),
            transacts_err: self.transacts_err.load(Ordering::Relaxed),
            statement_timeouts: self.statement_timeouts.load(Ordering::Relaxed),
            statements_cancelled: self.statements_cancelled.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            admin_requests: self.admin_requests.load(Ordering::Relaxed),
            latency_query: self.latency_query.snapshot(),
            latency_transact: self.latency_transact.snapshot(),
            latency_admin: self.latency_admin.snapshot(),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`ServerStats`], as sent over the admin
/// route.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[allow(missing_docs)] // field names mirror ServerStats, documented there
pub struct StatsSnapshot {
    pub connections_accepted: u64,
    pub connections_rejected_busy: u64,
    pub connections_shed_queue_full: u64,
    pub connections_active: u64,
    pub connections_pending: u64,
    pub queries_ok: u64,
    pub queries_err: u64,
    pub transacts_ok: u64,
    pub transacts_err: u64,
    pub statement_timeouts: u64,
    pub statements_cancelled: u64,
    pub protocol_errors: u64,
    pub admin_requests: u64,
    pub latency_query: LatencyBuckets,
    pub latency_transact: LatencyBuckets,
    pub latency_admin: LatencyBuckets,
}

/// The per-route histograms by wire-name prefix.
const ROUTES: [&str; 3] = ["admin", "query", "transact"];

impl StatsSnapshot {
    fn route_buckets(&self, route: &str) -> &LatencyBuckets {
        match route {
            "admin" => &self.latency_admin,
            "query" => &self.latency_query,
            "transact" => &self.latency_transact,
            other => unreachable!("unknown route {other}"),
        }
    }

    fn route_buckets_mut(&mut self, route: &str) -> &mut LatencyBuckets {
        match route {
            "admin" => &mut self.latency_admin,
            "query" => &mut self.latency_query,
            "transact" => &mut self.latency_transact,
            other => unreachable!("unknown route {other}"),
        }
    }

    /// The counters as sorted (name, value) pairs — the wire encoding
    /// of the admin `stats` reply is built from this, so adding a
    /// counter never breaks an old client. Histogram buckets appear as
    /// `latency_<route>_us_b<idx>` pairs; empty buckets are omitted to
    /// keep the reply small.
    pub fn named(&self) -> Vec<(String, u64)> {
        let mut pairs = vec![
            ("admin_requests".to_owned(), self.admin_requests),
            ("connections_accepted".to_owned(), self.connections_accepted),
            ("connections_active".to_owned(), self.connections_active),
            ("connections_pending".to_owned(), self.connections_pending),
            (
                "connections_rejected_busy".to_owned(),
                self.connections_rejected_busy,
            ),
            (
                "connections_shed_queue_full".to_owned(),
                self.connections_shed_queue_full,
            ),
            ("protocol_errors".to_owned(), self.protocol_errors),
            ("queries_err".to_owned(), self.queries_err),
            ("queries_ok".to_owned(), self.queries_ok),
            ("statement_timeouts".to_owned(), self.statement_timeouts),
            ("statements_cancelled".to_owned(), self.statements_cancelled),
            ("transacts_err".to_owned(), self.transacts_err),
            ("transacts_ok".to_owned(), self.transacts_ok),
        ];
        for route in ROUTES {
            let buckets = self.route_buckets(route);
            for (i, &count) in buckets.0.iter().enumerate() {
                if count != 0 {
                    pairs.push((format!("latency_{route}_us_b{i:02}"), count));
                }
            }
        }
        pairs.sort();
        pairs
    }

    /// Rebuild a snapshot from wire pairs (unknown names are ignored,
    /// missing ones default to 0).
    pub fn from_named(pairs: &[(String, u64)]) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        for (name, value) in pairs {
            match name.as_str() {
                "admin_requests" => snap.admin_requests = *value,
                "connections_accepted" => snap.connections_accepted = *value,
                "connections_active" => snap.connections_active = *value,
                "connections_pending" => snap.connections_pending = *value,
                "connections_rejected_busy" => snap.connections_rejected_busy = *value,
                "connections_shed_queue_full" => snap.connections_shed_queue_full = *value,
                "protocol_errors" => snap.protocol_errors = *value,
                "queries_err" => snap.queries_err = *value,
                "queries_ok" => snap.queries_ok = *value,
                "statement_timeouts" => snap.statement_timeouts = *value,
                "statements_cancelled" => snap.statements_cancelled = *value,
                "transacts_err" => snap.transacts_err = *value,
                "transacts_ok" => snap.transacts_ok = *value,
                other => {
                    // latency_<route>_us_b<idx>
                    let Some(rest) = other.strip_prefix("latency_") else {
                        continue;
                    };
                    let Some((route, idx)) = rest.split_once("_us_b") else {
                        continue;
                    };
                    if !ROUTES.contains(&route) {
                        continue;
                    }
                    if let Ok(i) = idx.parse::<usize>() {
                        if i < LATENCY_BUCKETS {
                            snap.route_buckets_mut(route).0[i] = *value;
                        }
                    }
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_named_pairs() {
        let stats = ServerStats::new();
        stats.queries_ok.store(3, Ordering::Relaxed);
        stats.connections_accepted.store(2, Ordering::Relaxed);
        stats.statement_timeouts.store(1, Ordering::Relaxed);
        stats.statements_cancelled.store(1, Ordering::Relaxed);
        stats
            .connections_shed_queue_full
            .store(4, Ordering::Relaxed);
        stats.latency_query.record(Duration::from_micros(7));
        stats.latency_query.record(Duration::from_millis(3));
        stats.latency_transact.record(Duration::from_secs(1));
        stats.latency_admin.record(Duration::ZERO);
        let snap = stats.snapshot();
        assert_eq!(StatsSnapshot::from_named(&snap.named()), snap);
    }

    #[test]
    fn histogram_buckets_are_log2_of_microseconds() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO); // sub-µs → bucket 0
        h.record(Duration::from_micros(1)); // bucket 0
        h.record(Duration::from_micros(2)); // bucket 1
        h.record(Duration::from_millis(1)); // 2^9 ≤ 1000 µs < 2^10 → bucket 9
        let snap = h.snapshot();
        assert_eq!(snap.0[0], 2);
        assert_eq!(snap.0[1], 1);
        assert_eq!(snap.0[9], 1);
        assert_eq!(snap.count(), 4);
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let h = LatencyHistogram::default();
        assert_eq!(h.snapshot().quantile_upper_us(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 3: [8, 16)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        let snap = h.snapshot();
        assert_eq!(snap.quantile_upper_us(0.5), Some(16));
        assert_eq!(snap.quantile_upper_us(0.99), Some(16));
        assert_eq!(snap.quantile_upper_us(1.0), Some(1 << 17));
    }
}
