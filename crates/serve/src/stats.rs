//! Server counters: lock-free atomics bumped on the request path,
//! snapshotted for the admin `stats` route and for the load-generator
//! bench. Alongside the monotone counters, every route keeps a
//! log-bucketed latency histogram ([`LatencyHistogram`]): one relaxed
//! `fetch_add` per request, no locks, exported through the same named
//! wire pairs so old clients simply ignore the new names.
//!
//! Since the observability PR the counters live on a unified
//! [`MetricsRegistry`] (`gcore::obs`): every field of [`ServerStats`]
//! is an `Arc` handle into the registry, registered under its wire
//! name, so the admin `metrics` route renders the same counters as
//! Prometheus-style text with zero double bookkeeping. The slow-query
//! log ([`SlowLog`]) rides along: a bounded ring of over-threshold
//! statements with their rendered execution profiles.

use gcore::obs::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket `i` counts requests whose
/// latency lies in `[2^i, 2^{i+1})` microseconds, the last bucket
/// absorbing everything slower (~36 minutes and beyond).
pub const LATENCY_BUCKETS: usize = gcore::obs::HISTOGRAM_BUCKETS;

/// A lock-free log₂-bucketed latency histogram — the core
/// [`Histogram`](gcore::obs::Histogram), recording microseconds.
pub type LatencyHistogram = gcore::obs::Histogram;

/// A point-in-time copy of one route's latency buckets; index `i`
/// counts requests in `[2^i, 2^{i+1})` µs.
pub type LatencyBuckets = gcore::obs::HistogramBuckets;

/// Monotone counters shared by every server thread. All loads/stores
/// are `Relaxed`: the counters are observability, not synchronization.
///
/// Every field is a handle into the stats' own [`MetricsRegistry`]
/// (registered under the field's wire name), so bumping a field and
/// serving the `metrics` route read the same atomic.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections accepted (including ones later rejected as busy).
    pub connections_accepted: Arc<AtomicU64>,
    /// Connections turned away at the connection cap.
    pub connections_rejected_busy: Arc<AtomicU64>,
    /// Connections shed because the pending queue was over its
    /// watermark — admitted under the cap, but the worker backlog was
    /// already too deep to serve them within any useful latency.
    pub connections_shed_queue_full: Arc<AtomicU64>,
    /// Connections currently being served.
    pub connections_active: Arc<AtomicU64>,
    /// Connections admitted but waiting for a worker to pick them up.
    pub connections_pending: Arc<AtomicU64>,
    /// Query statements answered successfully.
    pub queries_ok: Arc<AtomicU64>,
    /// Query statements answered with a statement error.
    pub queries_err: Arc<AtomicU64>,
    /// Transact scripts committed successfully.
    pub transacts_ok: Arc<AtomicU64>,
    /// Transact scripts answered with a statement error.
    pub transacts_err: Arc<AtomicU64>,
    /// Statements cut off by the statement timeout.
    pub statement_timeouts: Arc<AtomicU64>,
    /// Statements whose evaluation was cooperatively cancelled and
    /// whose worker thread returned to the pool. Every timeout is also
    /// a cancellation, so this tracks `statement_timeouts` unless a
    /// future route cancels for other reasons.
    pub statements_cancelled: Arc<AtomicU64>,
    /// Connections dropped for protocol violations.
    pub protocol_errors: Arc<AtomicU64>,
    /// Admin requests served (all ops).
    pub admin_requests: Arc<AtomicU64>,
    /// Statements slow enough to enter the slow-query log.
    pub slow_queries: Arc<AtomicU64>,
    /// Latency of the query route (request read to reply written).
    pub latency_query: Arc<LatencyHistogram>,
    /// Latency of the transact route.
    pub latency_transact: Arc<LatencyHistogram>,
    /// Latency of the admin route.
    pub latency_admin: Arc<LatencyHistogram>,
    /// The registry every field above is registered in.
    registry: MetricsRegistry,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// A zeroed counter set over a fresh registry.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        ServerStats {
            connections_accepted: registry.counter("connections_accepted"),
            connections_rejected_busy: registry.counter("connections_rejected_busy"),
            connections_shed_queue_full: registry.counter("connections_shed_queue_full"),
            connections_active: registry.gauge("connections_active"),
            connections_pending: registry.gauge("connections_pending"),
            queries_ok: registry.counter("queries_ok"),
            queries_err: registry.counter("queries_err"),
            transacts_ok: registry.counter("transacts_ok"),
            transacts_err: registry.counter("transacts_err"),
            statement_timeouts: registry.counter("statement_timeouts"),
            statements_cancelled: registry.counter("statements_cancelled"),
            protocol_errors: registry.counter("protocol_errors"),
            admin_requests: registry.counter("admin_requests"),
            slow_queries: registry.counter("slow_queries"),
            latency_query: registry.histogram("latency_query_us"),
            latency_transact: registry.histogram("latency_transact_us"),
            latency_admin: registry.histogram("latency_admin_us"),
            registry,
        }
    }

    /// The unified registry behind the counters; render it with
    /// [`MetricsRegistry::render_prometheus`] for the admin `metrics`
    /// route.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// An instantaneous copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected_busy: self.connections_rejected_busy.load(Ordering::Relaxed),
            connections_shed_queue_full: self.connections_shed_queue_full.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            connections_pending: self.connections_pending.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_err: self.queries_err.load(Ordering::Relaxed),
            transacts_ok: self.transacts_ok.load(Ordering::Relaxed),
            transacts_err: self.transacts_err.load(Ordering::Relaxed),
            statement_timeouts: self.statement_timeouts.load(Ordering::Relaxed),
            statements_cancelled: self.statements_cancelled.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            admin_requests: self.admin_requests.load(Ordering::Relaxed),
            slow_queries: self.slow_queries.load(Ordering::Relaxed),
            latency_query: self.latency_query.snapshot(),
            latency_transact: self.latency_transact.snapshot(),
            latency_admin: self.latency_admin.snapshot(),
            extra: Vec::new(),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`ServerStats`], as sent over the admin
/// route.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
#[allow(missing_docs)] // field names mirror ServerStats, documented there
pub struct StatsSnapshot {
    pub connections_accepted: u64,
    pub connections_rejected_busy: u64,
    pub connections_shed_queue_full: u64,
    pub connections_active: u64,
    pub connections_pending: u64,
    pub queries_ok: u64,
    pub queries_err: u64,
    pub transacts_ok: u64,
    pub transacts_err: u64,
    pub statement_timeouts: u64,
    pub statements_cancelled: u64,
    pub protocol_errors: u64,
    pub admin_requests: u64,
    pub slow_queries: u64,
    pub latency_query: LatencyBuckets,
    pub latency_transact: LatencyBuckets,
    pub latency_admin: LatencyBuckets,
    /// Counters this client build has no dedicated field for — a newer
    /// server's additions (or the engine-level pairs the stats route
    /// appends, like `scc_cache_hits`). Preserved verbatim, sorted, so
    /// a version-skewed client still sees and round-trips every value.
    pub extra: Vec<(String, u64)>,
}

/// The per-route histograms by wire-name prefix.
const ROUTES: [&str; 3] = ["admin", "query", "transact"];

impl StatsSnapshot {
    fn route_buckets(&self, route: &str) -> &LatencyBuckets {
        match route {
            "admin" => &self.latency_admin,
            "query" => &self.latency_query,
            "transact" => &self.latency_transact,
            other => unreachable!("unknown route {other}"),
        }
    }

    fn route_buckets_mut(&mut self, route: &str) -> &mut LatencyBuckets {
        match route {
            "admin" => &mut self.latency_admin,
            "query" => &mut self.latency_query,
            "transact" => &mut self.latency_transact,
            other => unreachable!("unknown route {other}"),
        }
    }

    /// The counters as sorted (name, value) pairs — the wire encoding
    /// of the admin `stats` reply is built from this, so adding a
    /// counter never breaks an old client. Histogram buckets appear as
    /// `latency_<route>_us_b<idx>` pairs; empty buckets are omitted to
    /// keep the reply small. [`extra`](Self::extra) pairs are included
    /// verbatim, so a relayed snapshot loses nothing.
    pub fn named(&self) -> Vec<(String, u64)> {
        let mut pairs = vec![
            ("admin_requests".to_owned(), self.admin_requests),
            ("connections_accepted".to_owned(), self.connections_accepted),
            ("connections_active".to_owned(), self.connections_active),
            ("connections_pending".to_owned(), self.connections_pending),
            (
                "connections_rejected_busy".to_owned(),
                self.connections_rejected_busy,
            ),
            (
                "connections_shed_queue_full".to_owned(),
                self.connections_shed_queue_full,
            ),
            ("protocol_errors".to_owned(), self.protocol_errors),
            ("queries_err".to_owned(), self.queries_err),
            ("queries_ok".to_owned(), self.queries_ok),
            ("slow_queries".to_owned(), self.slow_queries),
            ("statement_timeouts".to_owned(), self.statement_timeouts),
            ("statements_cancelled".to_owned(), self.statements_cancelled),
            ("transacts_err".to_owned(), self.transacts_err),
            ("transacts_ok".to_owned(), self.transacts_ok),
        ];
        for route in ROUTES {
            let buckets = self.route_buckets(route);
            for (i, &count) in buckets.0.iter().enumerate() {
                if count != 0 {
                    pairs.push((format!("latency_{route}_us_b{i:02}"), count));
                }
            }
        }
        pairs.extend(self.extra.iter().cloned());
        pairs.sort();
        pairs
    }

    /// Rebuild a snapshot from wire pairs. Forward-compatible: names
    /// this build has no field for — a newer server's counters, new
    /// histogram routes, engine-level additions — are preserved in
    /// [`extra`](Self::extra) instead of dropped, so
    /// `from_named(named())` round-trips across version skew. Missing
    /// known names default to 0.
    pub fn from_named(pairs: &[(String, u64)]) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        for (name, value) in pairs {
            match name.as_str() {
                "admin_requests" => snap.admin_requests = *value,
                "connections_accepted" => snap.connections_accepted = *value,
                "connections_active" => snap.connections_active = *value,
                "connections_pending" => snap.connections_pending = *value,
                "connections_rejected_busy" => snap.connections_rejected_busy = *value,
                "connections_shed_queue_full" => snap.connections_shed_queue_full = *value,
                "protocol_errors" => snap.protocol_errors = *value,
                "queries_err" => snap.queries_err = *value,
                "queries_ok" => snap.queries_ok = *value,
                "slow_queries" => snap.slow_queries = *value,
                "statement_timeouts" => snap.statement_timeouts = *value,
                "statements_cancelled" => snap.statements_cancelled = *value,
                "transacts_err" => snap.transacts_err = *value,
                "transacts_ok" => snap.transacts_ok = *value,
                other => {
                    // latency_<route>_us_b<idx> for a known route fills
                    // the matching histogram bucket; everything else is
                    // kept verbatim in `extra`.
                    let bucket = other
                        .strip_prefix("latency_")
                        .and_then(|rest| rest.split_once("_us_b"))
                        .filter(|(route, _)| ROUTES.contains(route))
                        .and_then(|(route, idx)| {
                            idx.parse::<usize>()
                                .ok()
                                .filter(|&i| i < LATENCY_BUCKETS)
                                .map(|i| (route, i))
                        });
                    match bucket {
                        Some((route, i)) => snap.route_buckets_mut(route).0[i] = *value,
                        None => snap.extra.push((name.clone(), *value)),
                    }
                }
            }
        }
        snap.extra.sort();
        snap
    }
}

// ---------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------

/// Cap on the rendered profile text stored per slow-log entry, so one
/// pathological statement cannot balloon the ring.
const SLOWLOG_PROFILE_CAP: usize = 4096;

/// One over-threshold statement as kept by the [`SlowLog`] and served
/// over the admin `slowlog` route.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SlowLogEntry {
    /// The statement text as received.
    pub text: String,
    /// Snapshot epoch the statement evaluated against.
    pub epoch: u64,
    /// Wall-clock evaluation time, in microseconds.
    pub elapsed_us: u64,
    /// Rendered execution profile (timings included), truncated to a
    /// fixed cap. Empty when the statement failed before producing one.
    pub profile: String,
}

/// A bounded ring of the most recent over-threshold statements.
/// Recording takes one short mutex hold off the hot path (only slow
/// statements ever reach it).
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    entries: Mutex<VecDeque<SlowLogEntry>>,
}

impl SlowLog {
    /// An empty ring keeping at most `capacity` entries (0 disables).
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            capacity,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one slow statement, evicting the oldest entry beyond
    /// capacity. The profile text is truncated to a fixed cap.
    pub fn record(&self, mut entry: SlowLogEntry) {
        if self.capacity == 0 {
            return;
        }
        if entry.profile.len() > SLOWLOG_PROFILE_CAP {
            let mut cut = SLOWLOG_PROFILE_CAP;
            while !entry.profile.is_char_boundary(cut) {
                cut -= 1;
            }
            entry.profile.truncate(cut);
            entry.profile.push_str("…\n[truncated]");
        }
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The current entries, oldest first.
    pub fn entries(&self) -> Vec<SlowLogEntry> {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

/// Record a request latency in microseconds (shared by the server's
/// per-route recording and the slow-log threshold check).
pub(crate) fn as_micros(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_named_pairs() {
        let stats = ServerStats::new();
        stats.queries_ok.store(3, Ordering::Relaxed);
        stats.connections_accepted.store(2, Ordering::Relaxed);
        stats.statement_timeouts.store(1, Ordering::Relaxed);
        stats.statements_cancelled.store(1, Ordering::Relaxed);
        stats
            .connections_shed_queue_full
            .store(4, Ordering::Relaxed);
        stats.latency_query.record(Duration::from_micros(7));
        stats.latency_query.record(Duration::from_millis(3));
        stats.latency_transact.record(Duration::from_secs(1));
        stats.latency_admin.record(Duration::ZERO);
        let snap = stats.snapshot();
        assert_eq!(StatsSnapshot::from_named(&snap.named()), snap);
    }

    /// Version skew: a newer server sends counters (and whole histogram
    /// routes) this build has never heard of. They land in `extra` —
    /// visible, and surviving a re-encode — instead of vanishing.
    #[test]
    fn unknown_names_survive_a_round_trip() {
        let stats = ServerStats::new();
        stats.queries_ok.store(9, Ordering::Relaxed);
        let mut pairs = stats.snapshot().named();
        pairs.push(("replication_lag_ms".to_owned(), 250));
        pairs.push(("latency_replicate_us_b07".to_owned(), 12));
        pairs.push(("scc_cache_hits".to_owned(), 41));
        pairs.sort();

        let decoded = StatsSnapshot::from_named(&pairs);
        assert_eq!(decoded.queries_ok, 9);
        assert_eq!(
            decoded.extra,
            vec![
                ("latency_replicate_us_b07".to_owned(), 12),
                ("replication_lag_ms".to_owned(), 250),
                ("scc_cache_hits".to_owned(), 41),
            ]
        );
        // Re-encoding preserves the unknown names verbatim.
        assert_eq!(StatsSnapshot::from_named(&decoded.named()), decoded);
    }

    /// Out-of-range bucket indices from a newer build (more buckets)
    /// must not panic or be silently dropped.
    #[test]
    fn out_of_range_bucket_index_is_kept_as_extra() {
        let pairs = vec![(format!("latency_query_us_b{}", LATENCY_BUCKETS + 1), 5)];
        let snap = StatsSnapshot::from_named(&pairs);
        assert_eq!(snap.latency_query.count(), 0);
        assert_eq!(snap.extra.len(), 1);
    }

    #[test]
    fn histogram_buckets_are_log2_of_microseconds() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO); // sub-µs → bucket 0
        h.record(Duration::from_micros(1)); // bucket 0
        h.record(Duration::from_micros(2)); // bucket 1
        h.record(Duration::from_millis(1)); // 2^9 ≤ 1000 µs < 2^10 → bucket 9
        let snap = h.snapshot();
        assert_eq!(snap.0[0], 2);
        assert_eq!(snap.0[1], 1);
        assert_eq!(snap.0[9], 1);
        assert_eq!(snap.count(), 4);
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let h = LatencyHistogram::default();
        assert_eq!(h.snapshot().quantile_upper_us(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 3: [8, 16)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        let snap = h.snapshot();
        assert_eq!(snap.quantile_upper_us(0.5), Some(16));
        assert_eq!(snap.quantile_upper_us(0.99), Some(16));
        assert_eq!(snap.quantile_upper_us(1.0), Some(1 << 17));
    }

    #[test]
    fn server_stats_render_as_prometheus_text() {
        let stats = ServerStats::new();
        stats.queries_ok.store(5, Ordering::Relaxed);
        stats.latency_query.record(Duration::from_micros(10));
        let text = stats.registry().render_prometheus("gcore");
        assert!(text.contains("# TYPE gcore_queries_ok counter"));
        assert!(text.contains("gcore_queries_ok 5"));
        assert!(text.contains("# TYPE gcore_connections_active gauge"));
        assert!(text.contains("# TYPE gcore_latency_query_us histogram"));
        assert!(text.contains("gcore_latency_query_us_count 1"));
    }

    #[test]
    fn slowlog_is_a_bounded_ring() {
        let log = SlowLog::new(2);
        for i in 0..4u64 {
            log.record(SlowLogEntry {
                text: format!("q{i}"),
                epoch: i,
                elapsed_us: 1000 * i,
                profile: String::new(),
            });
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].text, "q2");
        assert_eq!(entries[1].text, "q3");

        // Capacity 0 disables recording entirely.
        let off = SlowLog::new(0);
        off.record(entries[0].clone());
        assert!(off.entries().is_empty());
    }

    #[test]
    fn slowlog_caps_profile_text() {
        let log = SlowLog::new(1);
        log.record(SlowLogEntry {
            text: "big".into(),
            epoch: 0,
            elapsed_us: 1,
            profile: "x".repeat(10_000),
        });
        let got = &log.entries()[0];
        assert!(got.profile.len() < 10_000);
        assert!(got.profile.ends_with("[truncated]"));
    }
}
