//! Server counters: lock-free atomics bumped on the request path,
//! snapshotted for the admin `stats` route and for the load-generator
//! bench.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters shared by every server thread. All loads/stores
/// are `Relaxed`: the counters are observability, not synchronization.
#[derive(Default, Debug)]
pub struct ServerStats {
    /// Connections accepted (including ones later rejected as busy).
    pub connections_accepted: AtomicU64,
    /// Connections turned away at the connection cap.
    pub connections_rejected_busy: AtomicU64,
    /// Connections currently being served.
    pub connections_active: AtomicU64,
    /// Query statements answered successfully.
    pub queries_ok: AtomicU64,
    /// Query statements answered with a statement error.
    pub queries_err: AtomicU64,
    /// Transact scripts committed successfully.
    pub transacts_ok: AtomicU64,
    /// Transact scripts answered with a statement error.
    pub transacts_err: AtomicU64,
    /// Statements cut off by the statement timeout.
    pub statement_timeouts: AtomicU64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: AtomicU64,
    /// Admin requests served (all ops).
    pub admin_requests: AtomicU64,
}

impl ServerStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An instantaneous copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected_busy: self.connections_rejected_busy.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_err: self.queries_err.load(Ordering::Relaxed),
            transacts_ok: self.transacts_ok.load(Ordering::Relaxed),
            transacts_err: self.transacts_err.load(Ordering::Relaxed),
            statement_timeouts: self.statement_timeouts.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            admin_requests: self.admin_requests.load(Ordering::Relaxed),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`ServerStats`], as sent over the admin
/// route.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[allow(missing_docs)] // field names mirror ServerStats, documented there
pub struct StatsSnapshot {
    pub connections_accepted: u64,
    pub connections_rejected_busy: u64,
    pub connections_active: u64,
    pub queries_ok: u64,
    pub queries_err: u64,
    pub transacts_ok: u64,
    pub transacts_err: u64,
    pub statement_timeouts: u64,
    pub protocol_errors: u64,
    pub admin_requests: u64,
}

impl StatsSnapshot {
    /// The counters as sorted (name, value) pairs — the wire encoding
    /// of the admin `stats` reply is built from this, so adding a
    /// counter never breaks an old client.
    pub fn named(&self) -> Vec<(String, u64)> {
        let mut pairs = vec![
            ("admin_requests".to_owned(), self.admin_requests),
            ("connections_accepted".to_owned(), self.connections_accepted),
            ("connections_active".to_owned(), self.connections_active),
            (
                "connections_rejected_busy".to_owned(),
                self.connections_rejected_busy,
            ),
            ("protocol_errors".to_owned(), self.protocol_errors),
            ("queries_err".to_owned(), self.queries_err),
            ("queries_ok".to_owned(), self.queries_ok),
            ("statement_timeouts".to_owned(), self.statement_timeouts),
            ("transacts_err".to_owned(), self.transacts_err),
            ("transacts_ok".to_owned(), self.transacts_ok),
        ];
        pairs.sort();
        pairs
    }

    /// Rebuild a snapshot from wire pairs (unknown names are ignored,
    /// missing ones default to 0).
    pub fn from_named(pairs: &[(String, u64)]) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        for (name, value) in pairs {
            match name.as_str() {
                "admin_requests" => snap.admin_requests = *value,
                "connections_accepted" => snap.connections_accepted = *value,
                "connections_active" => snap.connections_active = *value,
                "connections_rejected_busy" => snap.connections_rejected_busy = *value,
                "protocol_errors" => snap.protocol_errors = *value,
                "queries_err" => snap.queries_err = *value,
                "queries_ok" => snap.queries_ok = *value,
                "statement_timeouts" => snap.statement_timeouts = *value,
                "transacts_err" => snap.transacts_err = *value,
                "transacts_ok" => snap.transacts_ok = *value,
                _ => {}
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_named_pairs() {
        let stats = ServerStats::new();
        stats.queries_ok.store(3, Ordering::Relaxed);
        stats.connections_accepted.store(2, Ordering::Relaxed);
        stats.statement_timeouts.store(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(StatsSnapshot::from_named(&snap.named()), snap);
    }
}
