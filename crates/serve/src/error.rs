//! Client- and server-side failures of the serve layer.

use crate::protocol::ErrorCode;
use std::fmt;

/// Anything that can go wrong speaking the protocol or talking to a
/// server.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServeError {
    /// A socket-level failure (rendered from `std::io::Error`).
    Io(String),
    /// The local side detected a protocol violation in the peer's
    /// bytes (bad magic, checksum mismatch, truncated frame, …).
    Protocol(String),
    /// The peer reported a failure in an error frame.
    Remote {
        /// The stable protocol error code (`S000`–`S007`).
        code: ErrorCode,
        /// The peer's message.
        message: String,
    },
    /// The connection closed before a complete response arrived.
    ConnectionClosed,
}

impl ServeError {
    /// The remote error code, if this is a [`ServeError::Remote`].
    pub fn remote_code(&self) -> Option<ErrorCode> {
        match self {
            ServeError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "i/o error: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            ServeError::ConnectionClosed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
