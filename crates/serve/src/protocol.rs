//! The wire protocol: length-prefixed, FNV-1a-checksummed binary
//! frames over TCP, following the `gcore-store` codec conventions
//! (fixed magic, explicit version, little-endian integers, checksums
//! over every payload).
//!
//! ## Connection establishment
//!
//! The client opens a connection and sends a raw 12-byte hello —
//! [`HANDSHAKE_MAGIC`] followed by [`PROTOCOL_VERSION`] (u32 LE).
//! Everything the server sends, from the first byte, is a frame: a
//! healthy server answers with a [`FrameKind::Hello`] frame carrying
//! its protocol version and current snapshot epoch; a server at its
//! connection cap answers with an [`FrameKind::Error`] frame coded
//! [`ErrorCode::Busy`] and closes.
//!
//! ## Frames
//!
//! ```text
//! ┌──────┬────────────┬─────────┬──────────────┐
//! │ kind │ len (u32)  │ payload │ fnv1a64      │
//! │ u8   │ LE         │ len B   │ u64 LE       │
//! └──────┴────────────┴─────────┴──────────────┘
//! ```
//!
//! The checksum covers the kind byte, the length field and the payload
//! (everything before it), so no single corrupted, truncated or
//! reordered byte can pass undetected; payload lengths are capped at
//! [`MAX_FRAME_PAYLOAD`] *before* any allocation, so a hostile length
//! can never trigger a giant allocation. Both properties are pinned by
//! `tests/protocol_robustness.rs`.
//!
//! ## Requests and responses
//!
//! * **query** ([`FrameKind::Query`]) — payload is one UTF-8 G-CORE
//!   statement. Evaluated read-only on a snapshot pinned per statement.
//! * **transact** ([`FrameKind::Transact`]) — payload is a UTF-8
//!   `;`-separated script. Serialized through the engine's catalog
//!   front; `GRAPH VIEW` registrations commit and bump the epoch.
//! * **admin** ([`FrameKind::Admin`]) — an [`AdminRequest`].
//!
//! Query and transact responses stream as [`FrameKind::Header`] (the
//! epoch plus output sort), any number of [`FrameKind::Chunk`] frames
//! carrying the `gcore-store`-encoded output in [`CHUNK_PAYLOAD`]-byte
//! slices, and a final [`FrameKind::Done`]. Admin responses are a
//! single [`FrameKind::AdminOk`] frame. Every failure is an
//! [`FrameKind::Error`] frame carrying an [`ErrorCode`] and a message
//! (the code table is documented in `docs/DIAGNOSTICS.md`).

use crate::error::ServeError;

/// The 8-byte magic a client opens every connection with.
pub const HANDSHAKE_MAGIC: [u8; 8] = *b"GCORESRV";

/// Protocol version spoken by this build. Bumped on any wire change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a single frame's payload, enforced before allocation on
/// both sides. Large results are streamed as many chunks, so this
/// bounds per-frame memory, not response size.
pub const MAX_FRAME_PAYLOAD: u32 = 8 * 1024 * 1024;

/// Server-side slice size for streaming encoded results.
pub const CHUNK_PAYLOAD: usize = 256 * 1024;

/// Size of the frame header (kind byte + length field) on the wire.
pub const FRAME_HEADER_LEN: usize = 5;

/// Size of the trailing checksum on the wire.
pub const FRAME_CHECKSUM_LEN: usize = 8;

// ---------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------

/// Incremental FNV-1a/64 over the frame prefix; byte-compatible with
/// [`gcore_store::fnv1a64`] (a unit test pins the parity, so the serve
/// protocol and the storage format can never drift apart silently).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The checksum of a frame with the given kind byte and payload:
/// FNV-1a over kind, the little-endian length field and the payload.
pub fn frame_checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&[kind]);
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    h.finish()
}

// ---------------------------------------------------------------------
// Frame kinds and error codes
// ---------------------------------------------------------------------

/// Every frame kind on the wire. Client→server kinds are the three
/// request routes; the rest are server→client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum FrameKind {
    /// One read-only statement (UTF-8 text payload).
    Query = 0x01,
    /// A write script (UTF-8 text payload), serialized through the
    /// catalog front.
    Transact = 0x02,
    /// An [`AdminRequest`].
    Admin = 0x03,
    /// Response start: epoch (u64 LE) + output sort (u8).
    Header = 0x10,
    /// One slice of the encoded result.
    Chunk = 0x11,
    /// Response end (empty payload).
    Done = 0x12,
    /// A failure: [`ErrorCode`] (u16 LE) + message (u32-length-prefixed
    /// UTF-8).
    Error = 0x13,
    /// A successful [`AdminResponse`].
    AdminOk = 0x14,
    /// Server greeting: protocol version (u32 LE) + current epoch (u64
    /// LE).
    Hello = 0x20,
}

impl FrameKind {
    /// Parse a kind byte.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Query,
            0x02 => FrameKind::Transact,
            0x03 => FrameKind::Admin,
            0x10 => FrameKind::Header,
            0x11 => FrameKind::Chunk,
            0x12 => FrameKind::Done,
            0x13 => FrameKind::Error,
            0x14 => FrameKind::AdminOk,
            0x20 => FrameKind::Hello,
            _ => return None,
        })
    }
}

/// Stable protocol error codes, rendered `S000`–`S007` (the table
/// lives in `docs/DIAGNOSTICS.md` next to the engine's `E`/`W` codes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u16)]
pub enum ErrorCode {
    /// Malformed frame, handshake or request body: bad magic, version,
    /// checksum, length, kind, or non-UTF-8 text.
    Protocol = 0,
    /// The connection cap is reached; retry later.
    Busy = 1,
    /// The statement exceeded the connection's statement timeout.
    Timeout = 2,
    /// The statement was rejected or failed in the engine (the message
    /// carries the engine's diagnostic).
    Statement = 3,
    /// Unknown admin op or malformed admin arguments.
    Admin = 4,
    /// Save/load requested but the server has no storage configured,
    /// or the storage operation failed.
    Storage = 5,
    /// The server is draining connections for shutdown.
    ShuttingDown = 6,
    /// An internal failure encoding the response.
    Internal = 7,
}

impl ErrorCode {
    /// Parse a wire code; unknown codes collapse to
    /// [`ErrorCode::Protocol`] (the peer speaks a newer protocol).
    pub fn from_u16(raw: u16) -> ErrorCode {
        match raw {
            1 => ErrorCode::Busy,
            2 => ErrorCode::Timeout,
            3 => ErrorCode::Statement,
            4 => ErrorCode::Admin,
            5 => ErrorCode::Storage,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            _ => ErrorCode::Protocol,
        }
    }

    /// The stable rendering, e.g. `S003`.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "S000",
            ErrorCode::Busy => "S001",
            ErrorCode::Timeout => "S002",
            ErrorCode::Statement => "S003",
            ErrorCode::Admin => "S004",
            ErrorCode::Storage => "S005",
            ErrorCode::ShuttingDown => "S006",
            ErrorCode::Internal => "S007",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------

/// One decoded frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// What the payload means.
    pub kind: FrameKind,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame of the given kind and payload.
    pub fn new(kind: FrameKind, payload: Vec<u8>) -> Self {
        Frame { kind, payload }
    }
}

/// Serialize one frame: header, payload, checksum.
///
/// # Panics
///
/// If the payload exceeds [`MAX_FRAME_PAYLOAD`] — sender-side frames
/// are always produced by this crate's chunking, which respects the
/// cap.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD as usize,
        "frame payload over the wire cap"
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + FRAME_CHECKSUM_LEN);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_checksum(kind as u8, payload).to_le_bytes());
    out
}

/// Decode one frame from the front of `bytes`, returning it and the
/// number of bytes consumed. Every violation — unknown kind, oversized
/// or truncated length, checksum mismatch — is a
/// [`ServeError::Protocol`]; nothing panics and nothing allocates
/// beyond the validated payload length.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), ServeError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(ServeError::Protocol("truncated frame header".into()));
    }
    let kind_byte = bytes[0];
    let kind = FrameKind::from_u8(kind_byte)
        .ok_or_else(|| ServeError::Protocol(format!("unknown frame kind 0x{kind_byte:02x}")))?;
    let len = u32::from_le_bytes(bytes[1..5].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        return Err(ServeError::Protocol(format!(
            "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
        )));
    }
    let len = len as usize;
    let total = FRAME_HEADER_LEN + len + FRAME_CHECKSUM_LEN;
    if bytes.len() < total {
        return Err(ServeError::Protocol("truncated frame".into()));
    }
    let payload = &bytes[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
    let declared = u64::from_le_bytes(bytes[FRAME_HEADER_LEN + len..total].try_into().unwrap());
    if declared != frame_checksum(kind_byte, payload) {
        return Err(ServeError::Protocol("frame checksum mismatch".into()));
    }
    Ok((
        Frame {
            kind,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// [`decode_frame`] requiring that `bytes` is exactly one frame.
pub fn decode_frame_exact(bytes: &[u8]) -> Result<Frame, ServeError> {
    let (frame, consumed) = decode_frame(bytes)?;
    if consumed != bytes.len() {
        return Err(ServeError::Protocol("trailing bytes after frame".into()));
    }
    Ok(frame)
}

// ---------------------------------------------------------------------
// Payload helpers
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked sequential reader (the store's `Cursor` idiom, with
/// protocol errors).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ServeError::Protocol("truncated payload".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ServeError> {
        let n = self.u32()? as usize;
        // Clamp the preallocation by the physically present bytes: a
        // corrupt count surfaces as a protocol error, never a giant
        // allocation (the store decoder's convention).
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ServeError::Protocol("payload text is not UTF-8".into()))
    }

    fn finish(&self) -> Result<(), ServeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ServeError::Protocol("trailing bytes in payload".into()))
        }
    }
}

// ---------------------------------------------------------------------
// Hello / Header / Error payloads
// ---------------------------------------------------------------------

/// Encode the server greeting payload.
pub fn encode_hello(epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    put_u32(&mut out, PROTOCOL_VERSION);
    put_u64(&mut out, epoch);
    out
}

/// Decode a [`FrameKind::Hello`] payload into (version, epoch).
pub fn decode_hello(payload: &[u8]) -> Result<(u32, u64), ServeError> {
    let mut c = Cursor::new(payload);
    let version = c.u32()?;
    let epoch = c.u64()?;
    c.finish()?;
    Ok((version, epoch))
}

/// The sort of a streamed result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OutputSort {
    /// A §5 SELECT table, chunked in the `GCORETBL` encoding.
    Table,
    /// A graph, chunked in the `GCOREPPG` encoding.
    Graph,
}

/// Encode a [`FrameKind::Header`] payload.
pub fn encode_header(epoch: u64, sort: OutputSort) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    put_u64(&mut out, epoch);
    out.push(match sort {
        OutputSort::Table => 0,
        OutputSort::Graph => 1,
    });
    out
}

/// Decode a [`FrameKind::Header`] payload into (epoch, sort).
pub fn decode_header(payload: &[u8]) -> Result<(u64, OutputSort), ServeError> {
    let mut c = Cursor::new(payload);
    let epoch = c.u64()?;
    let sort = match c.u8()? {
        0 => OutputSort::Table,
        1 => OutputSort::Graph,
        b => return Err(ServeError::Protocol(format!("unknown output sort {b}"))),
    };
    c.finish()?;
    Ok((epoch, sort))
}

/// Encode an [`FrameKind::Error`] payload.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + message.len());
    out.extend_from_slice(&(code as u16).to_le_bytes());
    put_str(&mut out, message);
    out
}

/// Decode an [`FrameKind::Error`] payload into (code, message).
pub fn decode_error(payload: &[u8]) -> Result<(ErrorCode, String), ServeError> {
    let mut c = Cursor::new(payload);
    let code = ErrorCode::from_u16(c.u16()?);
    let message = c.str()?;
    c.finish()?;
    Ok((code, message))
}

// ---------------------------------------------------------------------
// Admin requests/responses
// ---------------------------------------------------------------------

/// Everything the admin route can be asked.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdminRequest {
    /// List registered graphs, tables and the default graph.
    ListGraphs,
    /// Server counters (connections, queries, timeouts, …).
    Stats,
    /// Render the planner's decisions for a statement.
    Explain(String),
    /// Persist the committed catalog to the server's storage backend.
    Save,
    /// Replace the committed catalog from the server's storage backend.
    Load,
    /// Health check; returns the current epoch.
    Ping,
    /// Set this connection's statement timeout in milliseconds (0
    /// disables it).
    SetTimeout(u64),
    /// The unified metrics registry rendered as Prometheus-style text
    /// (server counters plus the engine's core metrics).
    Metrics,
    /// The slow-query log: the most recent over-threshold statements
    /// with their execution profiles.
    SlowLog,
}

const ADMIN_LIST: u8 = 1;
const ADMIN_STATS: u8 = 2;
const ADMIN_EXPLAIN: u8 = 3;
const ADMIN_SAVE: u8 = 4;
const ADMIN_LOAD: u8 = 5;
const ADMIN_PING: u8 = 6;
const ADMIN_SET_TIMEOUT: u8 = 7;
const ADMIN_METRICS: u8 = 8;
const ADMIN_SLOWLOG: u8 = 9;

impl AdminRequest {
    /// Serialize as an [`FrameKind::Admin`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            AdminRequest::ListGraphs => out.push(ADMIN_LIST),
            AdminRequest::Stats => out.push(ADMIN_STATS),
            AdminRequest::Explain(text) => {
                out.push(ADMIN_EXPLAIN);
                put_str(&mut out, text);
            }
            AdminRequest::Save => out.push(ADMIN_SAVE),
            AdminRequest::Load => out.push(ADMIN_LOAD),
            AdminRequest::Ping => out.push(ADMIN_PING),
            AdminRequest::SetTimeout(ms) => {
                out.push(ADMIN_SET_TIMEOUT);
                put_u64(&mut out, *ms);
            }
            AdminRequest::Metrics => out.push(ADMIN_METRICS),
            AdminRequest::SlowLog => out.push(ADMIN_SLOWLOG),
        }
        out
    }

    /// Parse an [`FrameKind::Admin`] payload.
    pub fn decode(payload: &[u8]) -> Result<AdminRequest, ServeError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            ADMIN_LIST => AdminRequest::ListGraphs,
            ADMIN_STATS => AdminRequest::Stats,
            ADMIN_EXPLAIN => AdminRequest::Explain(c.str()?),
            ADMIN_SAVE => AdminRequest::Save,
            ADMIN_LOAD => AdminRequest::Load,
            ADMIN_PING => AdminRequest::Ping,
            ADMIN_SET_TIMEOUT => AdminRequest::SetTimeout(c.u64()?),
            ADMIN_METRICS => AdminRequest::Metrics,
            ADMIN_SLOWLOG => AdminRequest::SlowLog,
            op => return Err(ServeError::Protocol(format!("unknown admin op {op}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

/// The catalog listing returned by [`AdminRequest::ListGraphs`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GraphListing {
    /// Registered graph names, sorted.
    pub graphs: Vec<String>,
    /// Registered table names, sorted.
    pub tables: Vec<String>,
    /// The default graph, if set.
    pub default_graph: Option<String>,
}

/// Every successful admin reply ([`FrameKind::AdminOk`] payload).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdminResponse {
    /// Reply to [`AdminRequest::ListGraphs`].
    Graphs(GraphListing),
    /// Reply to [`AdminRequest::Stats`]: named counters, sorted by
    /// name (self-describing, so new counters never break clients).
    Stats(Vec<(String, u64)>),
    /// Reply to [`AdminRequest::Explain`].
    Explain(String),
    /// Reply to save/load/ping: the current snapshot epoch.
    Epoch(u64),
    /// Reply to [`AdminRequest::SetTimeout`].
    Ok,
    /// Reply to [`AdminRequest::Metrics`]: Prometheus-style text.
    Text(String),
    /// Reply to [`AdminRequest::SlowLog`], oldest entry first.
    SlowLog(Vec<crate::stats::SlowLogEntry>),
}

const RESP_GRAPHS: u8 = 1;
const RESP_STATS: u8 = 2;
const RESP_EXPLAIN: u8 = 3;
const RESP_EPOCH: u8 = 4;
const RESP_OK: u8 = 5;
const RESP_TEXT: u8 = 6;
const RESP_SLOWLOG: u8 = 7;

impl AdminResponse {
    /// Serialize as an [`FrameKind::AdminOk`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            AdminResponse::Graphs(listing) => {
                out.push(RESP_GRAPHS);
                put_u32(&mut out, listing.graphs.len() as u32);
                for g in &listing.graphs {
                    put_str(&mut out, g);
                }
                put_u32(&mut out, listing.tables.len() as u32);
                for t in &listing.tables {
                    put_str(&mut out, t);
                }
                match &listing.default_graph {
                    Some(name) => {
                        out.push(1);
                        put_str(&mut out, name);
                    }
                    None => out.push(0),
                }
            }
            AdminResponse::Stats(counters) => {
                out.push(RESP_STATS);
                put_u32(&mut out, counters.len() as u32);
                for (name, value) in counters {
                    put_str(&mut out, name);
                    put_u64(&mut out, *value);
                }
            }
            AdminResponse::Explain(text) => {
                out.push(RESP_EXPLAIN);
                put_str(&mut out, text);
            }
            AdminResponse::Epoch(epoch) => {
                out.push(RESP_EPOCH);
                put_u64(&mut out, *epoch);
            }
            AdminResponse::Ok => out.push(RESP_OK),
            AdminResponse::Text(text) => {
                out.push(RESP_TEXT);
                put_str(&mut out, text);
            }
            AdminResponse::SlowLog(entries) => {
                out.push(RESP_SLOWLOG);
                put_u32(&mut out, entries.len() as u32);
                for e in entries {
                    put_str(&mut out, &e.text);
                    put_u64(&mut out, e.epoch);
                    put_u64(&mut out, e.elapsed_us);
                    put_str(&mut out, &e.profile);
                }
            }
        }
        out
    }

    /// Parse an [`FrameKind::AdminOk`] payload.
    pub fn decode(payload: &[u8]) -> Result<AdminResponse, ServeError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            RESP_GRAPHS => {
                let n = c.u32()? as usize;
                let mut graphs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    graphs.push(c.str()?);
                }
                let m = c.u32()? as usize;
                let mut tables = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    tables.push(c.str()?);
                }
                let default_graph = match c.u8()? {
                    0 => None,
                    1 => Some(c.str()?),
                    b => {
                        return Err(ServeError::Protocol(format!("bad default-graph tag {b}")));
                    }
                };
                AdminResponse::Graphs(GraphListing {
                    graphs,
                    tables,
                    default_graph,
                })
            }
            RESP_STATS => {
                let n = c.u32()? as usize;
                let mut counters = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = c.str()?;
                    let value = c.u64()?;
                    counters.push((name, value));
                }
                AdminResponse::Stats(counters)
            }
            RESP_EXPLAIN => AdminResponse::Explain(c.str()?),
            RESP_EPOCH => AdminResponse::Epoch(c.u64()?),
            RESP_OK => AdminResponse::Ok,
            RESP_TEXT => AdminResponse::Text(c.str()?),
            RESP_SLOWLOG => {
                let n = c.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    entries.push(crate::stats::SlowLogEntry {
                        text: c.str()?,
                        epoch: c.u64()?,
                        elapsed_us: c.u64()?,
                        profile: c.str()?,
                    });
                }
                AdminResponse::SlowLog(entries)
            }
            tag => {
                return Err(ServeError::Protocol(format!(
                    "unknown admin response tag {tag}"
                )))
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_the_store_checksum() {
        for sample in [
            &b""[..],
            b"a",
            b"GCORESRV",
            b"frame payload \xf0\x9f\xa6\x80",
        ] {
            let mut h = Fnv1a::new();
            h.update(sample);
            assert_eq!(h.finish(), gcore_store::fnv1a64(sample));
        }
        // Incremental absorption is the same as one-shot.
        let mut h = Fnv1a::new();
        h.update(b"split ");
        h.update(b"payload");
        assert_eq!(h.finish(), gcore_store::fnv1a64(b"split payload"));
    }

    #[test]
    fn frames_round_trip() {
        for (kind, payload) in [
            (FrameKind::Query, &b"SELECT 1"[..]),
            (FrameKind::Chunk, &[0u8, 1, 2, 255][..]),
            (FrameKind::Done, &[][..]),
        ] {
            let bytes = encode_frame(kind, payload);
            let frame = decode_frame_exact(&bytes).unwrap();
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = encode_frame(FrameKind::Query, b"x");
        bytes[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(ServeError::Protocol(_))));
    }

    #[test]
    fn admin_payloads_round_trip() {
        let requests = [
            AdminRequest::ListGraphs,
            AdminRequest::Stats,
            AdminRequest::Explain("SELECT n.name AS n MATCH (n)".into()),
            AdminRequest::Save,
            AdminRequest::Load,
            AdminRequest::Ping,
            AdminRequest::SetTimeout(250),
            AdminRequest::Metrics,
            AdminRequest::SlowLog,
        ];
        for req in requests {
            assert_eq!(AdminRequest::decode(&req.encode()).unwrap(), req);
        }
        let responses = [
            AdminResponse::Graphs(GraphListing {
                graphs: vec!["people".into(), "ünïcødé".into()],
                tables: vec!["orders".into()],
                default_graph: Some("people".into()),
            }),
            AdminResponse::Stats(vec![("queries_ok".into(), 7)]),
            AdminResponse::Explain("plan".into()),
            AdminResponse::Epoch(9),
            AdminResponse::Ok,
            AdminResponse::Text("# TYPE gcore_queries_ok counter\n".into()),
            AdminResponse::SlowLog(vec![crate::stats::SlowLogEntry {
                text: "SELECT n MATCH (n)".into(),
                epoch: 4,
                elapsed_us: 125_000,
                profile: "match 1 pattern(s)  rows=9\n".into(),
            }]),
        ];
        for resp in responses {
            assert_eq!(AdminResponse::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn header_error_hello_round_trip() {
        let h = encode_header(12, OutputSort::Graph);
        assert_eq!(decode_header(&h).unwrap(), (12, OutputSort::Graph));
        let e = encode_error(ErrorCode::Busy, "try later");
        assert_eq!(
            decode_error(&e).unwrap(),
            (ErrorCode::Busy, "try later".to_owned())
        );
        let hello = encode_hello(3);
        assert_eq!(decode_hello(&hello).unwrap(), (PROTOCOL_VERSION, 3));
    }
}
