//! # gcore-ppg — the Path Property Graph data model
//!
//! This crate implements the data model of *G-CORE: A Core for Future Graph
//! Query Languages* (SIGMOD 2018), Section 2: the **Path Property Graph**
//! (PPG), a property graph extended with **stored paths as first-class
//! citizens**. Nodes, edges *and paths* have identity, labels and
//! multi-valued properties.
//!
//! Formally a PPG is `G = (N, E, P, ρ, δ, λ, σ)` — see
//! [`PathPropertyGraph`] for the mapping of each component.
//!
//! ## Quick example
//!
//! ```
//! use gcore_ppg::{Attributes, GraphBuilder};
//!
//! let mut b = GraphBuilder::standalone();
//! let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
//! let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
//! let knows = b.edge(ann, bob, Attributes::labeled("knows"));
//! // A stored path over existing, adjacent elements — the PPG extension.
//! let p = b.path(vec![ann, bob], vec![knows],
//!                Attributes::labeled("friendship").with_prop("trust", 0.95))
//!          .unwrap();
//! let g = b.build();
//! assert_eq!(g.path(p).unwrap().shape.length(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod builder;
pub mod catalog;
pub mod error;
pub mod export;
pub mod graph;
pub mod hash;
pub mod ids;
pub mod intern;
pub mod ops;
pub mod path;
pub mod property;
pub mod stats;
pub mod symbols;
pub mod table;
pub mod value;

pub use builder::GraphBuilder;
pub use catalog::{Catalog, CatalogError};
pub use error::GraphError;
pub use export::{sorted_elements, to_dot, to_text, ElementRef};
pub use graph::{Attributes, EdgeData, NodeData, PathData, PathPropertyGraph};
pub use ids::{EdgeId, ElementId, ElementSort, IdGen, NodeId, PathId};
pub use intern::ValueInterner;
pub use path::PathShape;
pub use property::PropertySet;
pub use stats::{EdgeLabelStats, GraphStats, PropStats};
pub use symbols::{Key, Label, LabelSet};
pub use table::{Table, TableError};
pub use value::{Date, Value};
