//! Multi-valued properties.
//!
//! Definition 2.1 makes σ a function `(N ∪ E ∪ P) × K → FSET(V)`: a property
//! of an element is a *finite set of values*. The guided tour leans on this:
//! Frank Gold's `employer` is `{"CWI", "MIT"}`, and `"MIT" = {"CWI","MIT"}`
//! evaluates to FALSE while `"MIT" IN {"CWI","MIT"}` is TRUE.
//!
//! [`PropertySet`] is that finite set: sorted, deduplicated, never containing
//! `Null`. The empty set means "property absent".

use crate::value::Value;
use std::fmt;

/// A finite set of values — σ(x, k) in Definition 2.1.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct PropertySet {
    // Sorted by Value's total order, deduplicated.
    values: Vec<Value>,
}

impl PropertySet {
    /// The empty set (property absent).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A singleton set — the common case for scalar properties.
    /// `Null` yields the empty set (absence).
    pub fn single(v: Value) -> Self {
        if v.is_null() {
            return Self::empty();
        }
        PropertySet { values: vec![v] }
    }

    /// Build from any collection of values; `Null`s are dropped,
    /// duplicates collapse.
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Self {
        let mut s = Self::empty();
        for v in values {
            s.insert(v);
        }
        s
    }

    /// Insert a value; returns true if it was new. `Null` is ignored.
    pub fn insert(&mut self, v: Value) -> bool {
        if v.is_null() {
            return false;
        }
        match self.values.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.values.insert(pos, v);
                true
            }
        }
    }

    /// True when the property is absent (σ(x,k) = ∅).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cardinality of the set (the paper's SIZE-style length test on
    /// multi-valued properties).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Membership, using semantic value equality.
    pub fn contains(&self, v: &Value) -> bool {
        self.values.binary_search(v).is_ok()
    }

    /// Set inclusion (the paper's SUBSET operator).
    pub fn is_subset_of(&self, other: &PropertySet) -> bool {
        self.values.iter().all(|v| other.contains(v))
    }

    /// Set equality as used by `=` on multi-valued properties.
    pub fn set_eq(&self, other: &PropertySet) -> bool {
        self.values == other.values
    }

    /// If the set is a singleton, the lone value.
    pub fn as_singleton(&self) -> Option<&Value> {
        if self.values.len() == 1 {
            Some(&self.values[0])
        } else {
            None
        }
    }

    /// Iterate values in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }

    /// Sorted values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the sorted value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Union (graph union merges property sets, §A.5).
    pub fn union(&self, other: &PropertySet) -> PropertySet {
        let mut out = self.clone();
        for v in other.iter() {
            out.insert(v.clone());
        }
        out
    }

    /// Intersection (graph intersection, §A.5).
    pub fn intersection(&self, other: &PropertySet) -> PropertySet {
        PropertySet {
            values: self
                .values
                .iter()
                .filter(|v| other.contains(v))
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for PropertySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper prints singleton sets without braces: "MIT", not {"MIT"}.
        match self.as_singleton() {
            Some(v) => write!(f, "{v}"),
            None => {
                write!(f, "{{")?;
                for (i, v) in self.values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<Value> for PropertySet {
    fn from(v: Value) -> Self {
        PropertySet::single(v)
    }
}

impl From<&str> for PropertySet {
    fn from(s: &str) -> Self {
        PropertySet::single(Value::str(s))
    }
}

impl From<i64> for PropertySet {
    fn from(i: i64) -> Self {
        PropertySet::single(Value::Int(i))
    }
}

impl From<f64> for PropertySet {
    fn from(f: f64) -> Self {
        PropertySet::single(Value::Float(f))
    }
}

impl FromIterator<Value> for PropertySet {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        PropertySet::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn multi(vals: &[&str]) -> PropertySet {
        vals.iter().map(|s| Value::str(*s)).collect()
    }

    #[test]
    fn papers_frank_gold_example() {
        // "MIT" = {"CWI","MIT"} is FALSE; "MIT" IN {"CWI","MIT"} is TRUE.
        let employer = multi(&["CWI", "MIT"]);
        let mit = PropertySet::from("MIT");
        assert!(!mit.set_eq(&employer));
        assert!(employer.contains(&Value::str("MIT")));
        assert!(mit.is_subset_of(&employer));
        assert!(!employer.is_subset_of(&mit));
    }

    #[test]
    fn singleton_display_omits_braces() {
        assert_eq!(PropertySet::from("MIT").to_string(), "MIT");
        assert_eq!(multi(&["CWI", "MIT"]).to_string(), "{CWI, MIT}");
        assert_eq!(PropertySet::empty().to_string(), "{}");
    }

    #[test]
    fn null_never_enters_a_set() {
        let mut s = PropertySet::empty();
        assert!(!s.insert(Value::Null));
        assert!(s.is_empty());
        assert!(PropertySet::single(Value::Null).is_empty());
    }

    #[test]
    fn insert_dedups_and_sorts() {
        let mut s = PropertySet::empty();
        assert!(s.insert(Value::Int(2)));
        assert!(s.insert(Value::Int(1)));
        assert!(!s.insert(Value::Int(2)));
        assert_eq!(s.values(), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn union_and_intersection() {
        let a = multi(&["x", "y"]);
        let b = multi(&["y", "z"]);
        assert_eq!(a.union(&b), multi(&["x", "y", "z"]));
        assert_eq!(a.intersection(&b), multi(&["y"]));
    }

    #[test]
    fn as_singleton() {
        assert!(PropertySet::empty().as_singleton().is_none());
        assert!(multi(&["a", "b"]).as_singleton().is_none());
        assert_eq!(
            PropertySet::from("a").as_singleton(),
            Some(&Value::str("a"))
        );
    }

    #[test]
    fn numeric_dedup_across_int_float() {
        let s = PropertySet::from_values([Value::Int(1), Value::Float(1.0)]);
        assert_eq!(s.len(), 1);
    }
}
