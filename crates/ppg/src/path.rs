//! Stored paths — the distinguishing feature of the PPG model.
//!
//! A path `δ(p) = [a1, e1, a2, …, an, en, an+1]` is an alternating list of
//! existing, adjacent nodes and edges (Definition 2.1, condition 3). Edges
//! may be traversed in either direction. We store the node list and edge
//! list separately; `nodes.len() == edges.len() + 1` always holds.

use crate::ids::{EdgeId, NodeId};
use std::fmt;

/// The shape of a path: its node sequence and edge sequence.
///
/// `nodes(p)` and `edges(p)` from the paper are the `nodes`/`edges` fields.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathShape {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl PathShape {
    /// A zero-length path sitting on a single node (n = 0 in the paper's
    /// definition — explicitly allowed).
    pub fn trivial(node: NodeId) -> Self {
        PathShape {
            nodes: vec![node],
            edges: Vec::new(),
        }
    }

    /// Build from parallel node/edge lists. Returns `None` when the lists do
    /// not form an alternating sequence (`nodes.len() != edges.len() + 1`).
    /// Adjacency against ρ is checked by the owning graph, which knows
    /// edge endpoints.
    pub fn new(nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Option<Self> {
        if nodes.is_empty() || nodes.len() != edges.len() + 1 {
            return None;
        }
        Some(PathShape { nodes, edges })
    }

    /// The paper's `nodes(p)` list: `[a1, …, an+1]`.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The paper's `edges(p)` list: `[e1, …, en]`.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// `length(L)`: the number of edges (hop count).
    pub fn length(&self) -> usize {
        self.edges.len()
    }

    /// First node of the path.
    pub fn start(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the path.
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("paths are never empty")
    }

    /// Concatenate with another path whose start equals our end.
    /// Returns `None` when the endpoints do not line up.
    pub fn concat(&self, other: &PathShape) -> Option<PathShape> {
        if self.end() != other.start() {
            return None;
        }
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&other.nodes[1..]);
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        Some(PathShape { nodes, edges })
    }

    /// The interleaved `[a1, e1, a2, …]` view used for display and for the
    /// canonical lexicographic order on paths.
    pub fn interleaved(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.nodes.len() + self.edges.len());
        for i in 0..self.edges.len() {
            out.push(self.nodes[i].raw());
            out.push(self.edges[i].raw());
        }
        out.push(self.end().raw());
        out
    }
}

impl fmt::Display for PathShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..self.edges.len() {
            write!(f, "{}, {}, ", self.nodes[i], self.edges[i])?;
        }
        write!(f, "{}]", self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }
    fn e(i: u64) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn trivial_path_has_length_zero() {
        let p = PathShape::trivial(n(5));
        assert_eq!(p.length(), 0);
        assert_eq!(p.start(), n(5));
        assert_eq!(p.end(), n(5));
    }

    #[test]
    fn shape_validation() {
        assert!(PathShape::new(vec![], vec![]).is_none());
        assert!(PathShape::new(vec![n(1)], vec![e(1)]).is_none());
        assert!(PathShape::new(vec![n(1), n(2)], vec![e(1)]).is_some());
    }

    #[test]
    fn figure2_path_301() {
        // δ(301) = [105, 207, 103, 202, 102]
        let p = PathShape::new(vec![n(105), n(103), n(102)], vec![e(207), e(202)]).unwrap();
        assert_eq!(p.nodes(), &[n(105), n(103), n(102)]);
        assert_eq!(p.edges(), &[e(207), e(202)]);
        assert_eq!(p.length(), 2);
        assert_eq!(p.interleaved(), vec![105, 207, 103, 202, 102]);
        assert_eq!(p.to_string(), "[#n105, #e207, #n103, #e202, #n102]");
    }

    #[test]
    fn concat_checks_endpoints() {
        let a = PathShape::new(vec![n(1), n(2)], vec![e(10)]).unwrap();
        let b = PathShape::new(vec![n(2), n(3)], vec![e(11)]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.nodes(), &[n(1), n(2), n(3)]);
        assert_eq!(c.edges(), &[e(10), e(11)]);
        assert!(b.concat(&a).is_none());
    }

    #[test]
    fn concat_with_trivial_is_identity() {
        let a = PathShape::new(vec![n(1), n(2)], vec![e(10)]).unwrap();
        let t = PathShape::trivial(n(2));
        assert_eq!(a.concat(&t).unwrap(), a);
        let t1 = PathShape::trivial(n(1));
        assert_eq!(t1.concat(&a).unwrap(), a);
    }
}
