//! Fluent construction of PPGs with automatic identifier allocation.
//!
//! Datasets and tests usually want to say "a Person named Ann knows a
//! Person named Bob" without threading raw identifiers around. The builder
//! draws fresh identifiers from a shared [`IdGen`] and also supports the
//! explicit identifiers needed to replicate the paper's figures verbatim.

use crate::error::GraphError;
use crate::graph::{Attributes, PathPropertyGraph};
use crate::ids::{EdgeId, IdGen, NodeId, PathId};
use crate::path::PathShape;

/// Builder for a single [`PathPropertyGraph`].
pub struct GraphBuilder {
    graph: PathPropertyGraph,
    ids: IdGen,
}

impl GraphBuilder {
    /// Build against an engine-shared identifier generator.
    pub fn new(ids: IdGen) -> Self {
        GraphBuilder {
            graph: PathPropertyGraph::new(),
            ids,
        }
    }

    /// Standalone builder with its own generator (tests, examples).
    pub fn standalone() -> Self {
        Self::new(IdGen::new())
    }

    /// The identifier generator in use.
    pub fn ids(&self) -> &IdGen {
        &self.ids
    }

    /// Add a node with a fresh identifier.
    pub fn node(&mut self, attrs: Attributes) -> NodeId {
        let id = self.ids.node();
        self.graph.add_node(id, attrs);
        id
    }

    /// Add a node with an explicit identifier (paper figures use literal
    /// ids like 101). Reserves the id so fresh ids never collide.
    pub fn node_with_id(&mut self, id: u64, attrs: Attributes) -> NodeId {
        let id = NodeId(id);
        self.ids.reserve_up_to(id.raw());
        self.graph.add_node(id, attrs);
        id
    }

    /// Add an edge with a fresh identifier.
    pub fn edge(&mut self, src: NodeId, dst: NodeId, attrs: Attributes) -> EdgeId {
        let id = self.ids.edge();
        self.graph
            .add_edge(id, src, dst, attrs)
            .expect("builder endpoints must exist");
        id
    }

    /// Add an edge with an explicit identifier.
    pub fn edge_with_id(
        &mut self,
        id: u64,
        src: NodeId,
        dst: NodeId,
        attrs: Attributes,
    ) -> Result<EdgeId, GraphError> {
        let id = EdgeId(id);
        self.ids.reserve_up_to(id.raw());
        self.graph.add_edge(id, src, dst, attrs)?;
        Ok(id)
    }

    /// Add a pair of edges in both directions with the same attributes —
    /// Figure 4 notes "the knows edges are drawn bi-directionally – this
    /// means there are two edges: one in each direction".
    pub fn edge_bidi(&mut self, a: NodeId, b: NodeId, attrs: Attributes) -> (EdgeId, EdgeId) {
        let ab = self.edge(a, b, attrs.clone());
        let ba = self.edge(b, a, attrs);
        (ab, ba)
    }

    /// Add a stored path with a fresh identifier.
    pub fn path(
        &mut self,
        nodes: Vec<NodeId>,
        edges: Vec<EdgeId>,
        attrs: Attributes,
    ) -> Result<PathId, GraphError> {
        let id = self.ids.path();
        let shape = PathShape::new(nodes, edges).ok_or(GraphError::PathShapeInvalid {
            path: id,
            nodes: 0,
            edges: 0,
        })?;
        self.graph.add_path(id, shape, attrs)?;
        Ok(id)
    }

    /// Add a stored path with an explicit identifier.
    pub fn path_with_id(
        &mut self,
        id: u64,
        nodes: Vec<NodeId>,
        edges: Vec<EdgeId>,
        attrs: Attributes,
    ) -> Result<PathId, GraphError> {
        let id = PathId(id);
        self.ids.reserve_up_to(id.raw());
        let n_len = nodes.len();
        let e_len = edges.len();
        let shape = PathShape::new(nodes, edges).ok_or(GraphError::PathShapeInvalid {
            path: id,
            nodes: n_len,
            edges: e_len,
        })?;
        self.graph.add_path(id, shape, attrs)?;
        Ok(id)
    }

    /// Read access to the graph under construction.
    pub fn graph(&self) -> &PathPropertyGraph {
        &self.graph
    }

    /// Finish, returning the graph with its label index built (seeding
    /// and edge expansion by label become O(1) lookups instead of
    /// scans) and its planner statistics collected (cost-based planning
    /// never falls back to blind estimates on builder output).
    pub fn build(self) -> PathPropertyGraph {
        let mut g = self.graph;
        g.build_label_index();
        g.build_stats();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Key;

    #[test]
    fn fluent_construction() {
        let mut b = GraphBuilder::standalone();
        let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
        let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
        let e = b.edge(ann, bob, Attributes::labeled("knows"));
        let p = b
            .path(vec![ann, bob], vec![e], Attributes::labeled("short"))
            .unwrap();
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.path(p).unwrap().shape.length(), 1);
        assert_eq!(g.prop(ann.into(), Key::new("name")), "Ann".into());
        g.validate().unwrap();
    }

    #[test]
    fn explicit_ids_reserve_the_range() {
        let mut b = GraphBuilder::standalone();
        let a = b.node_with_id(101, Attributes::new());
        let fresh = b.node(Attributes::new());
        assert_eq!(a.raw(), 101);
        assert!(fresh.raw() > 101);
    }

    #[test]
    fn bidirectional_edges_are_two_edges() {
        let mut b = GraphBuilder::standalone();
        let x = b.node(Attributes::new());
        let y = b.node(Attributes::new());
        let (xy, yx) = b.edge_bidi(x, y, Attributes::labeled("knows"));
        let g = b.build();
        assert_eq!(g.endpoints(xy), Some((x, y)));
        assert_eq!(g.endpoints(yx), Some((y, x)));
    }

    #[test]
    fn shared_idgen_keeps_graphs_disjoint() {
        let ids = IdGen::new();
        let mut b1 = GraphBuilder::new(ids.clone());
        let mut b2 = GraphBuilder::new(ids);
        let n1 = b1.node(Attributes::new());
        let n2 = b2.node(Attributes::new());
        assert_ne!(n1, n2);
    }
}
