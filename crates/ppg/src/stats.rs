//! Per-graph statistics for cost-based query planning.
//!
//! [`GraphStats`] is a small, deterministic summary of one
//! [`PathPropertyGraph`]: element counts per label, endpoint-distinctness
//! of every labeled edge relation (from which a planner derives average
//! degrees), and per-key property sketches (carrier counts and distinct
//! values, from which equality selectivities follow). The summary is
//! computed in one pass over the graph, cached on the graph next to the
//! label index (same lifecycle: built at [`crate::GraphBuilder::build`],
//! dropped by any mutation, force-built when a catalog is frozen into a
//! snapshot), and is *purely advisory* — a planner consulting wrong or
//! missing stats may pick a worse plan but never a wrong answer.
//!
//! Determinism matters more than precision here: equal graphs produce
//! equal stats in any process (everything is an exact count over sorted
//! data, no sampling, no hashing of addresses), so plans — and their
//! `EXPLAIN` renderings — are reproducible, and a cold-started engine
//! that reloads persisted stats plans identically to the engine that
//! saved them.

use crate::graph::PathPropertyGraph;
use crate::hash::FxHashMap;
use crate::ids::NodeId;
use crate::symbols::{Key, Label};
use crate::value::Value;

/// Statistics of one labeled edge relation `ℓ`: how many edges carry
/// the label and how many distinct endpoints they touch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EdgeLabelStats {
    /// Number of edges carrying the label.
    pub count: u64,
    /// Distinct source nodes among those edges.
    pub distinct_src: u64,
    /// Distinct destination nodes among those edges.
    pub distinct_dst: u64,
}

impl EdgeLabelStats {
    /// Average out-degree of a node that has at least one outgoing
    /// `ℓ`-edge (`count / distinct_src`); 0.0 for the empty relation.
    pub fn avg_out_degree(&self) -> f64 {
        if self.distinct_src == 0 {
            0.0
        } else {
            self.count as f64 / self.distinct_src as f64
        }
    }

    /// Average in-degree of a node that has at least one incoming
    /// `ℓ`-edge (`count / distinct_dst`); 0.0 for the empty relation.
    pub fn avg_in_degree(&self) -> f64 {
        if self.distinct_dst == 0 {
            0.0
        } else {
            self.count as f64 / self.distinct_dst as f64
        }
    }
}

/// Selectivity sketch of one property key on one element sort.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PropStats {
    /// Elements carrying the key (σ(x, k) ≠ ∅).
    pub carriers: u64,
    /// Total values across carriers (> `carriers` when multi-valued).
    pub values: u64,
    /// Distinct values across all carriers (exact).
    pub distinct: u64,
}

impl PropStats {
    /// Estimated fraction of carriers matching `key = <constant>`
    /// under a uniformity assumption: `1 / distinct`.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            1.0
        } else {
            1.0 / self.distinct as f64
        }
    }
}

/// A deterministic statistical summary of one graph. See the module
/// docs for lifecycle and intent. All association lists are sorted by
/// symbol, so equal graphs yield `==` stats.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GraphStats {
    /// |N|.
    pub node_count: u64,
    /// |E|.
    pub edge_count: u64,
    /// |P|.
    pub path_count: u64,
    /// Nodes per label, sorted by label symbol.
    pub nodes_per_label: Vec<(Label, u64)>,
    /// Labeled edge relations, sorted by label symbol.
    pub edges_per_label: Vec<(Label, EdgeLabelStats)>,
    /// Property sketches over nodes, sorted by key symbol.
    pub node_props: Vec<(Key, PropStats)>,
    /// Property sketches over edges, sorted by key symbol.
    pub edge_props: Vec<(Key, PropStats)>,
}

impl GraphStats {
    /// Compute the summary in one pass over `graph`.
    pub fn compute(graph: &PathPropertyGraph) -> GraphStats {
        let mut nodes_per_label: FxHashMap<Label, u64> = FxHashMap::default();
        let mut node_props: FxHashMap<Key, (u64, u64, Vec<Value>)> = FxHashMap::default();
        for id in graph.node_ids() {
            let attrs = &graph.node(id).expect("iterated id").attrs;
            for l in attrs.labels.iter() {
                *nodes_per_label.entry(l).or_default() += 1;
            }
            for (k, vs) in &attrs.properties {
                let slot = node_props.entry(*k).or_default();
                slot.0 += 1;
                slot.1 += vs.len() as u64;
                slot.2.extend(vs.iter().cloned());
            }
        }

        let mut edge_rel: FxHashMap<Label, (u64, Vec<NodeId>, Vec<NodeId>)> = FxHashMap::default();
        let mut edge_props: FxHashMap<Key, (u64, u64, Vec<Value>)> = FxHashMap::default();
        for id in graph.edge_ids() {
            let data = graph.edge(id).expect("iterated id");
            for l in data.attrs.labels.iter() {
                let slot = edge_rel.entry(l).or_default();
                slot.0 += 1;
                slot.1.push(data.src);
                slot.2.push(data.dst);
            }
            for (k, vs) in &data.attrs.properties {
                let slot = edge_props.entry(*k).or_default();
                slot.0 += 1;
                slot.1 += vs.len() as u64;
                slot.2.extend(vs.iter().cloned());
            }
        }

        let distinct_ids = |mut v: Vec<NodeId>| -> u64 {
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        let distinct_values = |mut v: Vec<Value>| -> u64 {
            v.sort_unstable_by(|a, b| a.total_cmp(b));
            v.dedup_by(|a, b| a.total_cmp(b).is_eq());
            v.len() as u64
        };
        let prop_table = |m: FxHashMap<Key, (u64, u64, Vec<Value>)>| -> Vec<(Key, PropStats)> {
            let mut v: Vec<(Key, PropStats)> = m
                .into_iter()
                .map(|(k, (carriers, values, vals))| {
                    (
                        k,
                        PropStats {
                            carriers,
                            values,
                            distinct: distinct_values(vals),
                        },
                    )
                })
                .collect();
            v.sort_unstable_by_key(|(k, _)| *k);
            v
        };

        let mut nodes_per_label: Vec<(Label, u64)> = nodes_per_label.into_iter().collect();
        nodes_per_label.sort_unstable_by_key(|(l, _)| *l);
        let mut edges_per_label: Vec<(Label, EdgeLabelStats)> = edge_rel
            .into_iter()
            .map(|(l, (count, srcs, dsts))| {
                (
                    l,
                    EdgeLabelStats {
                        count,
                        distinct_src: distinct_ids(srcs),
                        distinct_dst: distinct_ids(dsts),
                    },
                )
            })
            .collect();
        edges_per_label.sort_unstable_by_key(|(l, _)| *l);

        GraphStats {
            node_count: graph.node_count() as u64,
            edge_count: graph.edge_count() as u64,
            path_count: graph.path_count() as u64,
            nodes_per_label,
            edges_per_label,
            node_props: prop_table(node_props),
            edge_props: prop_table(edge_props),
        }
    }

    /// Nodes carrying `label` (0 when the label occurs on no node).
    pub fn nodes_with_label(&self, label: Label) -> u64 {
        self.nodes_per_label
            .binary_search_by_key(&label, |(l, _)| *l)
            .map(|i| self.nodes_per_label[i].1)
            .unwrap_or(0)
    }

    /// The labeled edge relation for `label`, if any edge carries it.
    pub fn edge_relation(&self, label: Label) -> Option<&EdgeLabelStats> {
        self.edges_per_label
            .binary_search_by_key(&label, |(l, _)| *l)
            .map(|i| &self.edges_per_label[i].1)
            .ok()
    }

    /// The node-property sketch for `key`, if any node carries it.
    pub fn node_prop(&self, key: Key) -> Option<&PropStats> {
        self.node_props
            .binary_search_by_key(&key, |(k, _)| *k)
            .map(|i| &self.node_props[i].1)
            .ok()
    }

    /// The edge-property sketch for `key`, if any edge carries it.
    pub fn edge_prop(&self, key: Key) -> Option<&PropStats> {
        self.edge_props
            .binary_search_by_key(&key, |(k, _)| *k)
            .map(|i| &self.edge_props[i].1)
            .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Attributes;
    use crate::ids::EdgeId;
    use crate::property::PropertySet;

    fn sample() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        g.add_node(
            NodeId(1),
            Attributes::labeled("Person").with_prop("name", "Ann"),
        );
        g.add_node(
            NodeId(2),
            Attributes::labeled("Person").with_prop("name", "Bob"),
        );
        g.add_node(
            NodeId(3),
            Attributes::labeled("Company").with_prop("name", "Acme"),
        );
        g.add_edge(
            EdgeId(10),
            NodeId(1),
            NodeId(2),
            Attributes::labeled("knows"),
        )
        .unwrap();
        g.add_edge(
            EdgeId(11),
            NodeId(2),
            NodeId(1),
            Attributes::labeled("knows"),
        )
        .unwrap();
        g.add_edge(
            EdgeId(12),
            NodeId(1),
            NodeId(3),
            Attributes::labeled("worksAt").with_prop("since", 2015),
        )
        .unwrap();
        g
    }

    #[test]
    fn counts_and_relations() {
        let s = GraphStats::compute(&sample());
        assert_eq!(s.node_count, 3);
        assert_eq!(s.edge_count, 3);
        assert_eq!(s.nodes_with_label(Label::new("Person")), 2);
        assert_eq!(s.nodes_with_label(Label::new("Company")), 1);
        assert_eq!(s.nodes_with_label(Label::new("Nope")), 0);
        let knows = s.edge_relation(Label::new("knows")).unwrap();
        assert_eq!(knows.count, 2);
        assert_eq!(knows.distinct_src, 2);
        assert_eq!(knows.distinct_dst, 2);
        assert!((knows.avg_out_degree() - 1.0).abs() < 1e-9);
        assert!(s.edge_relation(Label::new("livesIn")).is_none());
    }

    #[test]
    fn property_sketches() {
        let s = GraphStats::compute(&sample());
        let name = s.node_prop(Key::new("name")).unwrap();
        assert_eq!(name.carriers, 3);
        assert_eq!(name.values, 3);
        assert_eq!(name.distinct, 3);
        assert!((name.eq_selectivity() - 1.0 / 3.0).abs() < 1e-9);
        let since = s.edge_prop(Key::new("since")).unwrap();
        assert_eq!(since.carriers, 1);
        assert!(s.node_prop(Key::new("since")).is_none());
    }

    #[test]
    fn multi_valued_properties_counted_per_value() {
        let mut g = PathPropertyGraph::new();
        g.add_node(
            NodeId(1),
            Attributes::new().with_prop_set(
                "employer",
                PropertySet::from_values([Value::str("Acme"), Value::str("HAL")]),
            ),
        );
        g.add_node(NodeId(2), Attributes::new().with_prop("employer", "Acme"));
        let s = GraphStats::compute(&g);
        let emp = s.node_prop(Key::new("employer")).unwrap();
        assert_eq!(emp.carriers, 2);
        assert_eq!(emp.values, 3);
        assert_eq!(emp.distinct, 2);
    }

    #[test]
    fn equal_graphs_equal_stats() {
        // Insertion order must not matter.
        let a = GraphStats::compute(&sample());
        let mut g = PathPropertyGraph::new();
        g.add_node(
            NodeId(3),
            Attributes::labeled("Company").with_prop("name", "Acme"),
        );
        g.add_node(
            NodeId(2),
            Attributes::labeled("Person").with_prop("name", "Bob"),
        );
        g.add_node(
            NodeId(1),
            Attributes::labeled("Person").with_prop("name", "Ann"),
        );
        g.add_edge(
            EdgeId(12),
            NodeId(1),
            NodeId(3),
            Attributes::labeled("worksAt").with_prop("since", 2015),
        )
        .unwrap();
        g.add_edge(
            EdgeId(11),
            NodeId(2),
            NodeId(1),
            Attributes::labeled("knows"),
        )
        .unwrap();
        g.add_edge(
            EdgeId(10),
            NodeId(1),
            NodeId(2),
            Attributes::labeled("knows"),
        )
        .unwrap();
        assert_eq!(a, GraphStats::compute(&g));
    }
}
