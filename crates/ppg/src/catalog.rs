//! The catalog of named graphs and tables.
//!
//! The formal semantics assumes a function `gr` mapping graph identifiers
//! to actual graphs (§A.2, "basic graph patterns with location"). The
//! catalog is that function, extended with named tables for the §5
//! extensions and a *default graph* (`MATCH … ON` may be omitted when a
//! default is set, as the guided tour does after its first example).

use crate::graph::PathPropertyGraph;
use crate::hash::FxHashMap;
use crate::ids::IdGen;
use crate::table::Table;
use std::fmt;
use std::sync::Arc;

/// Errors raised by catalog lookups and registrations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CatalogError {
    /// `gr(gid)` is undefined.
    UnknownGraph(String),
    /// No table registered under this name.
    UnknownTable(String),
    /// `MATCH` without `ON` but no default graph configured.
    NoDefaultGraph,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownGraph(g) => write!(f, "unknown graph '{g}'"),
            CatalogError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            CatalogError::NoDefaultGraph => {
                write!(f, "MATCH has no ON clause and no default graph is set")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// Named graphs + named tables + default graph + the engine-wide
/// identifier generator.
///
/// Graphs are held behind `Arc` so that query evaluation can hold cheap
/// handles while views register new graphs.
#[derive(Clone)]
pub struct Catalog {
    graphs: FxHashMap<String, Arc<PathPropertyGraph>>,
    tables: FxHashMap<String, Arc<Table>>,
    default_graph: Option<String>,
    ids: IdGen,
}

impl Catalog {
    /// Empty catalog with a fresh identifier generator.
    pub fn new() -> Self {
        Catalog {
            graphs: FxHashMap::default(),
            tables: FxHashMap::default(),
            default_graph: None,
            ids: IdGen::new(),
        }
    }

    /// The engine-wide identifier generator. All graphs registered in one
    /// catalog should draw identifiers from it so identities stay unique.
    pub fn ids(&self) -> &IdGen {
        &self.ids
    }

    /// Register (or replace) a named graph. The graph's identifier space
    /// is reserved in the shared generator.
    pub fn register_graph(&mut self, name: impl Into<String>, mut graph: PathPropertyGraph) {
        let max_id = graph
            .node_ids()
            .map(|n| n.raw())
            .chain(graph.edge_ids().map(|e| e.raw()))
            .chain(graph.path_ids().map(|p| p.raw()))
            .max()
            .unwrap_or(0);
        self.ids.reserve_up_to(max_id);
        // Every graph entering the catalog — builder output, CONSTRUCT
        // result, GRAPH VIEW — gets the label index, so later queries
        // over it match at indexed speed, and planner statistics, so
        // later queries over it plan from real cardinalities.
        if !graph.has_label_index() {
            graph.build_label_index();
        }
        if !graph.has_stats() {
            graph.build_stats();
        }
        self.graphs.insert(name.into(), Arc::new(graph));
    }

    /// `gr(gid)`.
    pub fn graph(&self, name: &str) -> Result<Arc<PathPropertyGraph>, CatalogError> {
        self.graphs
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownGraph(name.to_owned()))
    }

    /// Is a graph with this name registered?
    pub fn has_graph(&self, name: &str) -> bool {
        self.graphs.contains_key(name)
    }

    /// Is this exact `Arc` handle (pointer identity, not content) one of
    /// the registered graphs? Lets per-snapshot caches restrict
    /// themselves to catalog-resident graphs — query-local graphs
    /// (subquery results, tables viewed as graphs) are transient and
    /// must not be pinned by a long-lived snapshot.
    pub fn contains_graph_handle(&self, graph: &Arc<PathPropertyGraph>) -> bool {
        self.graphs.values().any(|g| Arc::ptr_eq(g, graph))
    }

    /// Remove a graph (used to drop query-local `GRAPH … AS` views).
    pub fn unregister_graph(&mut self, name: &str) -> Option<Arc<PathPropertyGraph>> {
        self.graphs.remove(name)
    }

    /// Set the graph used when `MATCH` has no `ON` clause.
    pub fn set_default_graph(&mut self, name: impl Into<String>) {
        self.default_graph = Some(name.into());
    }

    /// The default graph, if any.
    pub fn default_graph(&self) -> Result<Arc<PathPropertyGraph>, CatalogError> {
        let name = self
            .default_graph
            .as_deref()
            .ok_or(CatalogError::NoDefaultGraph)?;
        self.graph(name)
    }

    /// Name of the default graph, if set.
    pub fn default_graph_name(&self) -> Option<&str> {
        self.default_graph.as_deref()
    }

    /// Register a named table (for `FROM` / `MATCH … ON <table>`).
    pub fn register_table(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), Arc::new(table));
    }

    /// Look up a named table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>, CatalogError> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownTable(name.to_owned()))
    }

    /// Is a table with this name registered?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Force-build the label index of every registered graph that lost
    /// (or never had) one, returning how many graphs were (re)indexed.
    ///
    /// [`register_graph`](Self::register_graph) indexes graphs on entry,
    /// but direct mutation through a `&mut Catalog` (tests, bulk
    /// loaders) drops indexes, and the accessors then silently fall back
    /// to scanning. A catalog about to be frozen into an engine snapshot
    /// calls this so that *every* graph evaluation sees is indexed —
    /// scan fallback is a per-call pessimization a long-lived snapshot
    /// must never pay. Indexed graphs are untouched (their `Arc`s are
    /// shared, not cloned); an unindexed graph is cloned once, indexed,
    /// and swapped in.
    pub fn freeze_indexes(&mut self) -> usize {
        let mut rebuilt = 0;
        for graph in self.graphs.values_mut() {
            if !graph.has_label_index() || !graph.has_stats() {
                let mut g = (**graph).clone();
                if !g.has_label_index() {
                    g.build_label_index();
                }
                if !g.has_stats() {
                    g.build_stats();
                }
                *graph = Arc::new(g);
                rebuilt += 1;
            }
        }
        rebuilt
    }

    /// True when every registered graph currently has a valid label
    /// index and valid planner statistics (the invariant a frozen
    /// snapshot maintains).
    pub fn all_indexed(&self) -> bool {
        self.graphs
            .values()
            .all(|g| g.has_label_index() && g.has_stats())
    }

    /// Sorted names of all registered graphs.
    pub fn graph_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.graphs.keys().cloned().collect();
        v.sort();
        v
    }

    /// Sorted names of all registered tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("graphs", &self.graph_names())
            .field("tables", &self.table_names())
            .field("default_graph", &self.default_graph)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Attributes;
    use crate::ids::NodeId;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        let mut g = PathPropertyGraph::new();
        g.add_node(NodeId(7), Attributes::new());
        c.register_graph("g", g);
        assert!(c.has_graph("g"));
        assert_eq!(c.graph("g").unwrap().node_count(), 1);
        assert!(matches!(
            c.graph("nope"),
            Err(CatalogError::UnknownGraph(_))
        ));
    }

    #[test]
    fn default_graph() {
        let mut c = Catalog::new();
        assert!(matches!(
            c.default_graph(),
            Err(CatalogError::NoDefaultGraph)
        ));
        c.register_graph("g", PathPropertyGraph::new());
        c.set_default_graph("g");
        assert!(c.default_graph().is_ok());
        assert_eq!(c.default_graph_name(), Some("g"));
    }

    #[test]
    fn registering_reserves_identifier_space() {
        let mut c = Catalog::new();
        let mut g = PathPropertyGraph::new();
        g.add_node(NodeId(500), Attributes::new());
        c.register_graph("g", g);
        assert!(c.ids().node().raw() > 500);
    }

    #[test]
    fn tables() {
        let mut c = Catalog::new();
        let t = Table::new(vec!["a"]).unwrap();
        c.register_table("orders", t);
        assert!(c.has_table("orders"));
        assert!(c.table("orders").is_ok());
        assert!(matches!(c.table("x"), Err(CatalogError::UnknownTable(_))));
    }

    #[test]
    fn freeze_indexes_rebuilds_only_invalidated_graphs() {
        use crate::symbols::Label;

        let mut c = Catalog::new();
        let mut g = PathPropertyGraph::new();
        g.add_node(NodeId(1), Attributes::labeled("Person"));
        c.register_graph("g", g); // register_graph indexes on entry
        assert!(c.all_indexed());
        let before = c.graph("g").unwrap();

        // An untouched catalog freezes for free: no graph is cloned.
        assert_eq!(c.freeze_indexes(), 0);
        assert!(Arc::ptr_eq(&before, &c.graph("g").unwrap()));

        // Mutating a graph through the catalog drops its index…
        let mutated = {
            let mut g = (*before).clone();
            g.add_node(NodeId(2), Attributes::labeled("Person"));
            g
        };
        assert!(!mutated.has_label_index());
        c.graphs.insert("g".into(), Arc::new(mutated));
        assert!(!c.all_indexed());

        // …and freezing rebuilds it, so lookups are index-served again.
        assert_eq!(c.freeze_indexes(), 1);
        assert!(c.all_indexed());
        let frozen = c.graph("g").unwrap();
        assert!(frozen.has_label_index());
        assert_eq!(
            frozen.nodes_with_label(Label::new("Person")),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn freeze_indexes_edge_cases() {
        use crate::symbols::Label;

        // The empty graph is indexable: freezing builds a (trivial)
        // index and the accessors answer through it.
        let mut c = Catalog::new();
        c.graphs
            .insert("empty".into(), Arc::new(PathPropertyGraph::new()));
        assert_eq!(c.freeze_indexes(), 1);
        let g = c.graph("empty").unwrap();
        assert!(g.has_label_index());
        assert!(g.nodes_with_label(Label::new("Person")).is_empty());

        // Single-label graph: one node, one label, index-served.
        let mut single = PathPropertyGraph::new();
        single.add_node(NodeId(9), Attributes::labeled("Only"));
        c.graphs.insert("single".into(), Arc::new(single));
        assert_eq!(c.freeze_indexes(), 1);
        let g = c.graph("single").unwrap();
        assert!(g.has_label_index());
        assert_eq!(g.nodes_with_label(Label::new("Only")), vec![NodeId(9)]);
        // Freezing again is a no-op for both.
        assert_eq!(c.freeze_indexes(), 0);
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.register_graph("zeta", PathPropertyGraph::new());
        c.register_graph("alpha", PathPropertyGraph::new());
        assert_eq!(c.graph_names(), vec!["alpha", "zeta"]);
    }
}
