//! Interned label and property-key symbols.
//!
//! The paper's `L` (labels) and `K` (property names) are infinite sets of
//! names; any concrete graph touches only finitely many. We intern them into
//! `u32` symbols so label tests and property lookups in the hot matching
//! loops compare integers instead of strings.
//!
//! The interner is process-global: a symbol interned once means the same
//! string everywhere, so graphs, queries and engines can be mixed freely.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned label name (element of `L`), used on nodes, edges and paths.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

/// An interned property key (element of `K`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(u32);

struct Interner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        }
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    fn resolve(&self, id: u32) -> String {
        self.names[id as usize].clone()
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }
}

fn labels() -> &'static RwLock<Interner> {
    static LABELS: OnceLock<RwLock<Interner>> = OnceLock::new();
    LABELS.get_or_init(|| RwLock::new(Interner::new()))
}

fn keys() -> &'static RwLock<Interner> {
    static KEYS: OnceLock<RwLock<Interner>> = OnceLock::new();
    KEYS.get_or_init(|| RwLock::new(Interner::new()))
}

impl Label {
    /// Intern `name`, returning its symbol. Idempotent.
    pub fn new(name: &str) -> Label {
        Label(labels().write().unwrap().intern(name))
    }

    /// Look up a label that may or may not have been interned yet.
    /// Useful to test "does this graph use label X" without polluting the
    /// interner.
    pub fn lookup(name: &str) -> Option<Label> {
        labels().read().unwrap().lookup(name).map(Label)
    }

    /// The label's textual name.
    pub fn name(self) -> String {
        labels().read().unwrap().resolve(self.0)
    }

    /// Raw symbol number (stable within a process only).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl Key {
    /// Intern `name`, returning its symbol. Idempotent.
    pub fn new(name: &str) -> Key {
        Key(keys().write().unwrap().intern(name))
    }

    /// Look up a key that may or may not have been interned yet.
    pub fn lookup(name: &str) -> Option<Key> {
        keys().read().unwrap().lookup(name).map(Key)
    }

    /// The key's textual name.
    pub fn name(self) -> String {
        keys().read().unwrap().resolve(self.0)
    }

    /// Raw symbol number (stable within a process only).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.name())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}", self.name())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

/// A small sorted set of labels, as assigned by the paper's λ function
/// (λ maps each element to a *finite set* of labels).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct LabelSet {
    // Sorted, deduplicated. Typically 0–2 entries, so a Vec beats any set.
    labels: Vec<Label>,
}

impl LabelSet {
    /// The empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A singleton set.
    pub fn single(label: Label) -> Self {
        LabelSet {
            labels: vec![label],
        }
    }

    /// Insert a label, keeping the set sorted. Returns true if newly added.
    pub fn insert(&mut self, label: Label) -> bool {
        match self.labels.binary_search(&label) {
            Ok(_) => false,
            Err(pos) => {
                self.labels.insert(pos, label);
                true
            }
        }
    }

    /// Remove a label. Returns true if it was present.
    pub fn remove(&mut self, label: Label) -> bool {
        match self.labels.binary_search(&label) {
            Ok(pos) => {
                self.labels.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test (λ(x) ∋ ℓ).
    pub fn contains(&self, label: Label) -> bool {
        self.labels.binary_search(&label).is_ok()
    }

    /// True when no label is assigned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Iterate in sorted symbol order.
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        self.labels.iter().copied()
    }

    /// Set union (used by graph union, §A.5).
    pub fn union(&self, other: &LabelSet) -> LabelSet {
        let mut out = self.clone();
        for l in other.iter() {
            out.insert(l);
        }
        out
    }

    /// Set intersection (used by graph intersection, §A.5).
    pub fn intersection(&self, other: &LabelSet) -> LabelSet {
        LabelSet {
            labels: self
                .labels
                .iter()
                .copied()
                .filter(|l| other.contains(*l))
                .collect(),
        }
    }

    /// Names of all labels, sorted alphabetically (for display and tests).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.labels.iter().map(|l| l.name()).collect();
        v.sort();
        v
    }
}

impl FromIterator<Label> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Self {
        let mut s = LabelSet::new();
        for l in iter {
            s.insert(l);
        }
        s
    }
}

impl<'a> FromIterator<&'a str> for LabelSet {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        iter.into_iter().map(Label::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Label::new("Person");
        let b = Label::new("Person");
        assert_eq!(a, b);
        assert_eq!(a.name(), "Person");
    }

    #[test]
    fn labels_and_keys_are_separate_namespaces() {
        let l = Label::new("name");
        let k = Key::new("name");
        // Same text, but resolved through independent interners.
        assert_eq!(l.name(), k.name());
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(Label::lookup("never_used_label_xyzzy").is_none());
        Label::new("now_used_label_xyzzy");
        assert!(Label::lookup("now_used_label_xyzzy").is_some());
    }

    #[test]
    fn label_set_insert_remove_contains() {
        let mut s = LabelSet::new();
        let p = Label::new("Person");
        let m = Label::new("Manager");
        assert!(s.insert(p));
        assert!(!s.insert(p));
        assert!(s.insert(m));
        assert_eq!(s.len(), 2);
        assert!(s.contains(p) && s.contains(m));
        assert!(s.remove(p));
        assert!(!s.remove(p));
        assert!(!s.contains(p));
    }

    #[test]
    fn label_set_union_intersection() {
        let a: LabelSet = ["A", "B"].into_iter().collect();
        let b: LabelSet = ["B", "C"].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        let i = a.intersection(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(Label::new("B")));
    }

    #[test]
    fn names_sorted_alphabetically() {
        let s: LabelSet = ["zeta", "alpha"].into_iter().collect();
        assert_eq!(s.names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
