//! Errors raised by PPG construction and mutation.

use crate::ids::{EdgeId, NodeId, PathId};
use std::fmt;

/// Violations of the well-formedness conditions of Definition 2.1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// An edge refers to a node identifier not present in `N`.
    DanglingEdge {
        /// The offending edge.
        edge: EdgeId,
        /// The missing endpoint.
        node: NodeId,
    },
    /// A path refers to a node not present in `N`.
    PathUnknownNode {
        /// The offending path.
        path: PathId,
        /// The missing node.
        node: NodeId,
    },
    /// A path refers to an edge not present in `E`.
    PathUnknownEdge {
        /// The offending path.
        path: PathId,
        /// The missing edge.
        edge: EdgeId,
    },
    /// A path step `[aj, ej, aj+1]` where ρ(ej) is neither `(aj, aj+1)`
    /// nor `(aj+1, aj)` — condition (3)(iii) of Definition 2.1.
    PathNotConnected {
        /// The offending path.
        path: PathId,
        /// The edge that fails to connect.
        edge: EdgeId,
        /// The step's source node.
        from: NodeId,
        /// The step's target node.
        to: NodeId,
    },
    /// δ(p) must alternate nodes and edges and start/end with a node:
    /// the node list must be exactly one longer than the edge list.
    PathShapeInvalid {
        /// The offending path.
        path: PathId,
        /// Number of nodes supplied.
        nodes: usize,
        /// Number of edges supplied.
        edges: usize,
    },
    /// An identifier was inserted twice with conflicting structure
    /// (different endpoints for an edge, different δ for a path).
    IdentityConflict(String),
    /// The element addressed by a mutation does not exist.
    NoSuchElement(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingEdge { edge, node } => {
                write!(f, "edge {edge} refers to missing node {node}")
            }
            GraphError::PathUnknownNode { path, node } => {
                write!(f, "path {path} refers to missing node {node}")
            }
            GraphError::PathUnknownEdge { path, edge } => {
                write!(f, "path {path} refers to missing edge {edge}")
            }
            GraphError::PathNotConnected {
                path,
                edge,
                from,
                to,
            } => write!(
                f,
                "path {path}: edge {edge} does not connect {from} and {to} in either direction"
            ),
            GraphError::PathShapeInvalid { path, nodes, edges } => write!(
                f,
                "path {path}: sequence of {nodes} nodes and {edges} edges is not an alternating node/edge list"
            ),
            GraphError::IdentityConflict(msg) => write!(f, "identity conflict: {msg}"),
            GraphError::NoSuchElement(msg) => write!(f, "no such element: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}
