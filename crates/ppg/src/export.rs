//! Human-readable exports: Graphviz DOT and a deterministic text dump.
//!
//! The text dump lists every element sorted by identifier with its labels
//! and properties; integration tests compare these dumps against the
//! graphs printed in the paper's figures.
//!
//! Both exports — and the binary snapshot writer in `gcore-store` —
//! iterate elements through one shared helper, [`sorted_elements`], so
//! every serialization of a graph agrees on the **canonical element
//! order**: nodes first, then edges, then paths, each sorted ascending
//! by identifier.

use crate::graph::{Attributes, EdgeData, NodeData, PathData, PathPropertyGraph};
use crate::ids::{EdgeId, NodeId, PathId};
use std::fmt::Write as _;

/// A borrowed view of one graph element, yielded by [`sorted_elements`]
/// in the canonical export order.
#[derive(Clone, Copy, Debug)]
pub enum ElementRef<'g> {
    /// A node and its payload.
    Node(NodeId, &'g NodeData),
    /// An edge and its payload.
    Edge(EdgeId, &'g EdgeData),
    /// A stored path and its payload.
    Path(PathId, &'g PathData),
}

/// Iterate every element of `g` in the canonical export order: all
/// nodes, then all edges, then all paths, each group sorted ascending
/// by identifier.
///
/// This is the single definition of "element order" shared by
/// [`to_text`], [`to_dot`] and the binary graph writer in the
/// `gcore-store` crate — so the human-readable dump and the on-disk
/// snapshot of one graph always list elements identically.
///
/// ```
/// use gcore_ppg::export::{sorted_elements, ElementRef};
/// use gcore_ppg::{Attributes, NodeId, EdgeId, PathPropertyGraph};
///
/// let mut g = PathPropertyGraph::new();
/// g.add_node(NodeId(2), Attributes::labeled("Person"));
/// g.add_node(NodeId(1), Attributes::labeled("Person"));
/// g.add_edge(EdgeId(5), NodeId(1), NodeId(2), Attributes::labeled("knows"))
///     .unwrap();
///
/// let order: Vec<String> = sorted_elements(&g)
///     .map(|el| match el {
///         ElementRef::Node(id, _) => id.to_string(),
///         ElementRef::Edge(id, _) => id.to_string(),
///         ElementRef::Path(id, _) => id.to_string(),
///     })
///     .collect();
/// assert_eq!(order, ["#n1", "#n2", "#e5"]);
/// ```
pub fn sorted_elements(g: &PathPropertyGraph) -> impl Iterator<Item = ElementRef<'_>> {
    let nodes = g
        .node_ids_sorted()
        .into_iter()
        .map(move |id| ElementRef::Node(id, g.node(id).expect("listed id")));
    let edges = g
        .edge_ids_sorted()
        .into_iter()
        .map(move |id| ElementRef::Edge(id, g.edge(id).expect("listed id")));
    let paths = g
        .path_ids_sorted()
        .into_iter()
        .map(move |id| ElementRef::Path(id, g.path(id).expect("listed id")));
    nodes.chain(edges).chain(paths)
}

fn attrs_inline(attrs: &Attributes) -> String {
    let mut out = String::new();
    for label in attrs.labels.names() {
        let _ = write!(out, ":{label}");
    }
    if !attrs.properties.is_empty() {
        let mut props: Vec<(String, String)> = attrs
            .properties
            .iter()
            .map(|(k, v)| (k.name(), v.to_string()))
            .collect();
        props.sort();
        let _ = write!(out, " {{");
        for (i, (k, v)) in props.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            let _ = write!(out, "{k}: {v}");
        }
        let _ = write!(out, "}}");
    }
    out
}

/// A deterministic, line-per-element dump of the whole graph, in the
/// canonical order of [`sorted_elements`].
///
/// ```
/// use gcore_ppg::{to_text, Attributes, NodeId, PathPropertyGraph};
///
/// let mut g = PathPropertyGraph::new();
/// g.add_node(NodeId(1), Attributes::labeled("Person").with_prop("name", "Ann"));
/// let dump = to_text(&g);
/// assert!(dump.starts_with("graph: 1 nodes, 0 edges, 0 paths"));
/// assert!(dump.contains("node #n1 :Person {name: Ann}"));
/// ```
pub fn to_text(g: &PathPropertyGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: {} nodes, {} edges, {} paths",
        g.node_count(),
        g.edge_count(),
        g.path_count()
    );
    for el in sorted_elements(g) {
        match el {
            ElementRef::Node(id, n) => {
                let _ = writeln!(out, "node {id} {}", attrs_inline(&n.attrs));
            }
            ElementRef::Edge(id, e) => {
                let _ = writeln!(
                    out,
                    "edge {id} {} -> {} {}",
                    e.src,
                    e.dst,
                    attrs_inline(&e.attrs)
                );
            }
            ElementRef::Path(id, p) => {
                let _ = writeln!(out, "path {id} {} {}", p.shape, attrs_inline(&p.attrs));
            }
        }
    }
    out
}

/// Graphviz DOT rendering, in the canonical order of
/// [`sorted_elements`]. Stored paths are drawn as label comments since
/// DOT has no native path concept.
///
/// ```
/// use gcore_ppg::{to_dot, Attributes, NodeId, PathPropertyGraph};
///
/// let mut g = PathPropertyGraph::new();
/// g.add_node(NodeId(1), Attributes::labeled("Person"));
/// let dot = to_dot(&g, "people");
/// assert!(dot.starts_with("digraph \"people\" {"));
/// assert!(dot.contains("n1 [label=\"#n1\\n:Person\"];"));
/// ```
pub fn to_dot(g: &PathPropertyGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for el in sorted_elements(g) {
        match el {
            ElementRef::Node(id, n) => {
                let _ = writeln!(
                    out,
                    "  n{} [label=\"{}\\n{}\"];",
                    id.raw(),
                    id,
                    escape(&attrs_inline(&n.attrs))
                );
            }
            ElementRef::Edge(_, e) => {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [label=\"{}\"];",
                    e.src.raw(),
                    e.dst.raw(),
                    escape(&attrs_inline(&e.attrs))
                );
            }
            ElementRef::Path(id, p) => {
                let _ = writeln!(
                    out,
                    "  // stored path {id}: {} {}",
                    p.shape,
                    attrs_inline(&p.attrs)
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Attributes;
    use crate::ids::{EdgeId, NodeId};
    use crate::path::PathShape;

    fn sample() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        g.add_node(
            NodeId(1),
            Attributes::labeled("Person").with_prop("name", "Ann"),
        );
        g.add_node(NodeId(2), Attributes::labeled("Person"));
        g.add_edge(
            EdgeId(3),
            NodeId(1),
            NodeId(2),
            Attributes::labeled("knows"),
        )
        .unwrap();
        g.add_path(
            crate::ids::PathId(4),
            PathShape::new(vec![NodeId(1), NodeId(2)], vec![EdgeId(3)]).unwrap(),
            Attributes::labeled("route"),
        )
        .unwrap();
        g
    }

    #[test]
    fn text_dump_is_deterministic_and_complete() {
        let g = sample();
        let t1 = to_text(&g);
        let t2 = to_text(&g);
        assert_eq!(t1, t2);
        assert!(t1.contains("node #n1 :Person {name: Ann}"));
        assert!(t1.contains("edge #e3 #n1 -> #n2 :knows"));
        assert!(t1.contains("path #p4"));
    }

    #[test]
    fn dot_contains_all_elements() {
        let d = to_dot(&sample(), "g");
        assert!(d.starts_with("digraph \"g\""));
        assert!(d.contains("n1 ->"));
        assert!(d.contains("stored path"));
        assert!(d.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut g = PathPropertyGraph::new();
        g.add_node(NodeId(1), Attributes::new().with_prop("q", "say \"hi\""));
        let d = to_dot(&g, "g");
        assert!(d.contains("\\\"hi\\\""));
    }

    #[test]
    fn sorted_elements_yields_nodes_edges_paths_in_id_order() {
        let g = sample();
        let kinds: Vec<&'static str> = sorted_elements(&g)
            .map(|el| match el {
                ElementRef::Node(..) => "n",
                ElementRef::Edge(..) => "e",
                ElementRef::Path(..) => "p",
            })
            .collect();
        assert_eq!(kinds, ["n", "n", "e", "p"]);
        let node_ids: Vec<NodeId> = sorted_elements(&g)
            .filter_map(|el| match el {
                ElementRef::Node(id, _) => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(node_ids, [NodeId(1), NodeId(2)]);
    }
}
