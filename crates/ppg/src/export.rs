//! Human-readable exports: Graphviz DOT and a deterministic text dump.
//!
//! The text dump lists every element sorted by identifier with its labels
//! and properties; integration tests compare these dumps against the
//! graphs printed in the paper's figures.

use crate::graph::{Attributes, PathPropertyGraph};
use std::fmt::Write as _;

fn attrs_inline(attrs: &Attributes) -> String {
    let mut out = String::new();
    for label in attrs.labels.names() {
        let _ = write!(out, ":{label}");
    }
    if !attrs.properties.is_empty() {
        let mut props: Vec<(String, String)> = attrs
            .properties
            .iter()
            .map(|(k, v)| (k.name(), v.to_string()))
            .collect();
        props.sort();
        let _ = write!(out, " {{");
        for (i, (k, v)) in props.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            let _ = write!(out, "{k}: {v}");
        }
        let _ = write!(out, "}}");
    }
    out
}

/// A deterministic, line-per-element dump of the whole graph.
pub fn to_text(g: &PathPropertyGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: {} nodes, {} edges, {} paths",
        g.node_count(),
        g.edge_count(),
        g.path_count()
    );
    for id in g.node_ids_sorted() {
        let n = g.node(id).expect("listed id");
        let _ = writeln!(out, "node {id} {}", attrs_inline(&n.attrs));
    }
    for id in g.edge_ids_sorted() {
        let e = g.edge(id).expect("listed id");
        let _ = writeln!(
            out,
            "edge {id} {} -> {} {}",
            e.src,
            e.dst,
            attrs_inline(&e.attrs)
        );
    }
    for id in g.path_ids_sorted() {
        let p = g.path(id).expect("listed id");
        let _ = writeln!(out, "path {id} {} {}", p.shape, attrs_inline(&p.attrs));
    }
    out
}

/// Graphviz DOT rendering. Stored paths are drawn as label comments since
/// DOT has no native path concept.
pub fn to_dot(g: &PathPropertyGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for id in g.node_ids_sorted() {
        let n = g.node(id).expect("listed id");
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{}\"];",
            id.raw(),
            id,
            escape(&attrs_inline(&n.attrs))
        );
    }
    for id in g.edge_ids_sorted() {
        let e = g.edge(id).expect("listed id");
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            e.src.raw(),
            e.dst.raw(),
            escape(&attrs_inline(&e.attrs))
        );
    }
    for id in g.path_ids_sorted() {
        let p = g.path(id).expect("listed id");
        let _ = writeln!(
            out,
            "  // stored path {id}: {} {}",
            p.shape,
            attrs_inline(&p.attrs)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Attributes;
    use crate::ids::{EdgeId, NodeId};
    use crate::path::PathShape;

    fn sample() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        g.add_node(
            NodeId(1),
            Attributes::labeled("Person").with_prop("name", "Ann"),
        );
        g.add_node(NodeId(2), Attributes::labeled("Person"));
        g.add_edge(
            EdgeId(3),
            NodeId(1),
            NodeId(2),
            Attributes::labeled("knows"),
        )
        .unwrap();
        g.add_path(
            crate::ids::PathId(4),
            PathShape::new(vec![NodeId(1), NodeId(2)], vec![EdgeId(3)]).unwrap(),
            Attributes::labeled("route"),
        )
        .unwrap();
        g
    }

    #[test]
    fn text_dump_is_deterministic_and_complete() {
        let g = sample();
        let t1 = to_text(&g);
        let t2 = to_text(&g);
        assert_eq!(t1, t2);
        assert!(t1.contains("node #n1 :Person {name: Ann}"));
        assert!(t1.contains("edge #e3 #n1 -> #n2 :knows"));
        assert!(t1.contains("path #p4"));
    }

    #[test]
    fn dot_contains_all_elements() {
        let d = to_dot(&sample(), "g");
        assert!(d.starts_with("digraph \"g\""));
        assert!(d.contains("n1 ->"));
        assert!(d.contains("stored path"));
        assert!(d.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut g = PathPropertyGraph::new();
        g.add_node(NodeId(1), Attributes::new().with_prop("q", "say \"hi\""));
        let d = to_dot(&g, "g");
        assert!(d.contains("\\\"hi\\\""));
    }
}
