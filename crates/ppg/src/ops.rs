//! Full-graph set operations — Appendix A.5 of the paper.
//!
//! Union, intersection and difference are defined over element
//! *identities*. Two graphs are **consistent** when every shared edge has
//! the same endpoints (ρ₁ = ρ₂ on E₁∩E₂) and every shared path the same
//! δ. The paper defines union/intersection of inconsistent graphs as the
//! empty PPG; [`union`] and [`intersect`] follow that literally, while the
//! `try_*` variants surface the conflict to callers who prefer an error.

use crate::error::GraphError;
use crate::graph::{Attributes, PathPropertyGraph};
use crate::ids::{EdgeId, PathId};

/// Are `a` and `b` consistent in the sense of §A.5?
pub fn consistent(a: &PathPropertyGraph, b: &PathPropertyGraph) -> Result<(), GraphError> {
    // Iterate over the smaller edge set.
    let (small, large) = if a.edge_count() <= b.edge_count() {
        (a, b)
    } else {
        (b, a)
    };
    for e in small.edge_ids() {
        if let (Some(x), Some(y)) = (small.endpoints(e), large.endpoints(e)) {
            if x != y {
                return Err(GraphError::IdentityConflict(format!(
                    "shared edge {e} has endpoints {:?} in one graph and {:?} in the other",
                    x, y
                )));
            }
        }
    }
    let (small, large) = if a.path_count() <= b.path_count() {
        (a, b)
    } else {
        (b, a)
    };
    for p in small.path_ids() {
        if let (Some(x), Some(y)) = (small.path(p), large.path(p)) {
            if x.shape != y.shape {
                return Err(GraphError::IdentityConflict(format!(
                    "shared path {p} has different δ in the two graphs"
                )));
            }
        }
    }
    Ok(())
}

/// G₁ ∪ G₂ per §A.5. Inconsistent inputs yield the **empty PPG**, exactly
/// as the paper defines. Labels and property sets of shared elements are
/// unioned.
pub fn union(a: &PathPropertyGraph, b: &PathPropertyGraph) -> PathPropertyGraph {
    try_union(a, b).unwrap_or_default()
}

/// Like [`union`] but reports the inconsistency instead of returning G∅.
pub fn try_union(
    a: &PathPropertyGraph,
    b: &PathPropertyGraph,
) -> Result<PathPropertyGraph, GraphError> {
    consistent(a, b)?;
    let mut out = PathPropertyGraph::new();
    for g in [a, b] {
        for id in g.node_ids_sorted() {
            out.add_node(id, g.node(id).expect("listed id").attrs.clone());
        }
    }
    for g in [a, b] {
        for id in g.edge_ids_sorted() {
            let e = g.edge(id).expect("listed id");
            out.add_edge(id, e.src, e.dst, e.attrs.clone())
                .expect("endpoints inserted above");
        }
    }
    for g in [a, b] {
        for id in g.path_ids_sorted() {
            let p = g.path(id).expect("listed id");
            out.add_path(id, p.shape.clone(), p.attrs.clone())
                .expect("constituents inserted above");
        }
    }
    Ok(out)
}

/// Union of many graphs, left to right (used by CONSTRUCT, which unions
/// one graph per object construct).
pub fn union_all<'a, I: IntoIterator<Item = &'a PathPropertyGraph>>(
    graphs: I,
) -> PathPropertyGraph {
    let mut out = PathPropertyGraph::new();
    for g in graphs {
        out = union(&out, g);
    }
    out
}

/// G₁ ∩ G₂ per §A.5: shared identities only; labels and property sets
/// intersect. Inconsistent inputs yield the empty PPG.
pub fn intersect(a: &PathPropertyGraph, b: &PathPropertyGraph) -> PathPropertyGraph {
    try_intersect(a, b).unwrap_or_default()
}

/// Like [`intersect`] but reports inconsistency.
pub fn try_intersect(
    a: &PathPropertyGraph,
    b: &PathPropertyGraph,
) -> Result<PathPropertyGraph, GraphError> {
    consistent(a, b)?;
    let mut out = PathPropertyGraph::new();
    for id in a.node_ids_sorted() {
        if let (Some(na), Some(nb)) = (a.node(id), b.node(id)) {
            out.add_node(id, na.attrs.intersect(&nb.attrs));
        }
    }
    for id in a.edge_ids_sorted() {
        if let (Some(ea), Some(eb)) = (a.edge(id), b.edge(id)) {
            // Consistency guarantees equal endpoints; both graphs are
            // well-formed, so the endpoints are in N₁ ∩ N₂.
            out.add_edge(id, ea.src, ea.dst, ea.attrs.intersect(&eb.attrs))
                .expect("endpoints present by well-formedness");
        }
    }
    for id in a.path_ids_sorted() {
        if let (Some(pa), Some(pb)) = (a.path(id), b.path(id)) {
            out.add_path(id, pa.shape.clone(), pa.attrs.intersect(&pb.attrs))
                .expect("constituents present by well-formedness");
        }
    }
    Ok(out)
}

/// G₁ ∖ G₂ per §A.5:
/// * N = N₁ ∖ N₂;
/// * E keeps edges of E₁ ∖ E₂ whose endpoints both survive;
/// * P keeps paths of P₁ ∖ P₂ fully contained in the surviving N and E;
/// * λ, σ restrict to the survivors (attributes come from G₁ alone).
///
/// Difference never needs the consistency check: all structure is taken
/// from G₁.
pub fn difference(a: &PathPropertyGraph, b: &PathPropertyGraph) -> PathPropertyGraph {
    let mut out = PathPropertyGraph::new();
    for id in a.node_ids_sorted() {
        if !b.contains_node(id) {
            out.add_node(id, a.node(id).expect("listed id").attrs.clone());
        }
    }
    let mut surviving_edges: Vec<EdgeId> = Vec::new();
    for id in a.edge_ids_sorted() {
        if b.contains_edge(id) {
            continue;
        }
        let e = a.edge(id).expect("listed id");
        if out.contains_node(e.src) && out.contains_node(e.dst) {
            out.add_edge(id, e.src, e.dst, e.attrs.clone())
                .expect("endpoints checked");
            surviving_edges.push(id);
        }
    }
    let surviving_paths: Vec<PathId> = a
        .path_ids_sorted()
        .into_iter()
        .filter(|id| !b.contains_path(*id))
        .collect();
    for id in surviving_paths {
        let p = a.path(id).expect("listed id");
        let nodes_ok = p.shape.nodes().iter().all(|n| out.contains_node(*n));
        let edges_ok = p.shape.edges().iter().all(|e| out.contains_edge(*e));
        if nodes_ok && edges_ok {
            out.add_path(id, p.shape.clone(), p.attrs.clone())
                .expect("constituents checked");
        }
    }
    out
}

/// Extract the subgraph induced by a set of paths: every node and edge on
/// any of the paths, with attributes restricted from `g` (λ|, σ| in the
/// path-construct semantics of §A.3). Optionally keeps the stored paths
/// themselves.
pub fn project_paths(
    g: &PathPropertyGraph,
    shapes: &[crate::path::PathShape],
) -> PathPropertyGraph {
    let mut out = PathPropertyGraph::new();
    for shape in shapes {
        for &n in shape.nodes() {
            if let Some(data) = g.node(n) {
                out.add_node(n, data.attrs.clone());
            } else {
                out.add_node(n, Attributes::new());
            }
        }
    }
    for shape in shapes {
        for &e in shape.edges() {
            if out.contains_edge(e) {
                continue;
            }
            if let Some(data) = g.edge(e) {
                out.add_edge(e, data.src, data.dst, data.attrs.clone())
                    .expect("path nodes inserted above");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Attributes;
    use crate::ids::NodeId;
    use crate::path::PathShape;
    use crate::symbols::Key;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }
    fn e(i: u64) -> EdgeId {
        EdgeId(i)
    }
    fn p(i: u64) -> PathId {
        PathId(i)
    }

    fn g1() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        g.add_node(n(1), Attributes::labeled("A").with_prop("k", "v1"));
        g.add_node(n(2), Attributes::labeled("B"));
        g.add_edge(e(10), n(1), n(2), Attributes::labeled("r"))
            .unwrap();
        g.add_path(
            p(100),
            PathShape::new(vec![n(1), n(2)], vec![e(10)]).unwrap(),
            Attributes::labeled("pp"),
        )
        .unwrap();
        g
    }

    fn g2() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        g.add_node(n(2), Attributes::labeled("B").with_prop("k", "v2"));
        g.add_node(n(3), Attributes::labeled("C"));
        g.add_edge(e(11), n(2), n(3), Attributes::new()).unwrap();
        g
    }

    #[test]
    fn union_merges_identities_and_attributes() {
        let u = union(&g1(), &g2());
        assert_eq!(u.node_count(), 3);
        assert_eq!(u.edge_count(), 2);
        assert_eq!(u.path_count(), 1);
        u.validate().unwrap();
        // n2 keeps label B once; property k merged from g2 only.
        assert_eq!(u.prop(n(2).into(), Key::new("k")).len(), 1);
    }

    #[test]
    fn union_of_shared_element_unions_property_sets() {
        let mut a = PathPropertyGraph::new();
        a.add_node(n(1), Attributes::new().with_prop("k", "x"));
        let mut b = PathPropertyGraph::new();
        b.add_node(n(1), Attributes::new().with_prop("k", "y"));
        let u = union(&a, &b);
        assert_eq!(u.prop(n(1).into(), Key::new("k")).len(), 2);
    }

    #[test]
    fn inconsistent_union_is_empty_graph() {
        let mut a = PathPropertyGraph::new();
        a.add_node(n(1), Attributes::new());
        a.add_node(n(2), Attributes::new());
        a.add_edge(e(10), n(1), n(2), Attributes::new()).unwrap();
        let mut b = PathPropertyGraph::new();
        b.add_node(n(1), Attributes::new());
        b.add_node(n(2), Attributes::new());
        b.add_edge(e(10), n(2), n(1), Attributes::new()).unwrap();
        assert!(union(&a, &b).is_empty());
        assert!(try_union(&a, &b).is_err());
        assert!(intersect(&a, &b).is_empty());
    }

    #[test]
    fn intersection_keeps_shared_identities_only() {
        let i = intersect(&g1(), &g2());
        assert_eq!(i.node_ids_sorted(), vec![n(2)]);
        assert_eq!(i.edge_count(), 0);
        assert_eq!(i.path_count(), 0);
        // g1 has no k on n2, so the intersected property set is empty.
        assert!(i.prop(n(2).into(), Key::new("k")).is_empty());
    }

    #[test]
    fn difference_removes_and_prunes() {
        let d = difference(&g1(), &g2());
        // n2 ∈ both, so removed; edge 10 loses an endpoint; path 100 dies.
        assert_eq!(d.node_ids_sorted(), vec![n(1)]);
        assert_eq!(d.edge_count(), 0);
        assert_eq!(d.path_count(), 0);
        d.validate().unwrap();
    }

    #[test]
    fn difference_with_disjoint_graph_is_identity() {
        let mut b = PathPropertyGraph::new();
        b.add_node(n(99), Attributes::new());
        let d = difference(&g1(), &b);
        assert_eq!(d, g1());
    }

    #[test]
    fn difference_keeps_attrs_from_left_only() {
        let mut b = PathPropertyGraph::new();
        b.add_node(n(2), Attributes::new());
        let d = difference(&g1(), &b);
        assert_eq!(d.prop(n(1).into(), Key::new("k")), "v1".into());
    }

    #[test]
    fn union_is_commutative_and_idempotent_on_consistent_inputs() {
        let ab = union(&g1(), &g2());
        let ba = union(&g2(), &g1());
        assert_eq!(ab, ba);
        assert_eq!(union(&g1(), &g1()), g1());
    }

    #[test]
    fn project_paths_extracts_induced_subgraph() {
        let g = g1();
        let shape = g.path(p(100)).unwrap().shape.clone();
        let proj = project_paths(&g, &[shape]);
        assert_eq!(proj.node_count(), 2);
        assert_eq!(proj.edge_count(), 1);
        assert_eq!(proj.path_count(), 0);
    }
}
