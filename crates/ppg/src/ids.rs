//! Identifiers for the three element sorts of a Path Property Graph.
//!
//! Definition 2.1 of the paper requires three pairwise-disjoint identifier
//! sets `N`, `E` and `P`. We model each as a `u64` newtype; disjointness is
//! enforced by the type system (a `NodeId` can never be confused with an
//! `EdgeId`), and a single engine-wide [`IdGen`] hands out fresh numbers so
//! that query outputs can *share* identities with their inputs — the paper's
//! "full graph" operators (union, intersection, difference) are defined in
//! terms of these shared identities.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric identifier.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a node (an element of `N` in Definition 2.1).
    NodeId,
    "#n"
);
id_type!(
    /// Identifier of an edge (an element of `E` in Definition 2.1).
    EdgeId,
    "#e"
);
id_type!(
    /// Identifier of a stored path (an element of `P` in Definition 2.1).
    PathId,
    "#p"
);

/// An identifier of any sort, used where the paper quantifies over
/// `N ∪ E ∪ P` (e.g. the label function λ and property function σ).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ElementId {
    /// A node identifier.
    Node(NodeId),
    /// An edge identifier.
    Edge(EdgeId),
    /// A path identifier.
    Path(PathId),
}

impl ElementId {
    /// The sort of this element.
    pub fn sort(self) -> ElementSort {
        match self {
            ElementId::Node(_) => ElementSort::Node,
            ElementId::Edge(_) => ElementSort::Edge,
            ElementId::Path(_) => ElementSort::Path,
        }
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElementId::Node(n) => n.fmt(f),
            ElementId::Edge(e) => e.fmt(f),
            ElementId::Path(p) => p.fmt(f),
        }
    }
}

impl From<NodeId> for ElementId {
    fn from(id: NodeId) -> Self {
        ElementId::Node(id)
    }
}
impl From<EdgeId> for ElementId {
    fn from(id: EdgeId) -> Self {
        ElementId::Edge(id)
    }
}
impl From<PathId> for ElementId {
    fn from(id: PathId) -> Self {
        ElementId::Path(id)
    }
}

/// The three sorts of first-class citizens in the PPG model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ElementSort {
    /// The element is a node.
    Node,
    /// The element is an edge.
    Edge,
    /// The element is a path.
    Path,
}

impl fmt::Display for ElementSort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ElementSort::Node => "node",
            ElementSort::Edge => "edge",
            ElementSort::Path => "path",
        })
    }
}

/// Monotone generator of fresh identifiers, shared by all graphs of one
/// engine so identities never collide across graphs.
///
/// Cloning an `IdGen` clones the *handle*: both handles draw from the same
/// counter.
#[derive(Clone, Debug)]
pub struct IdGen {
    next: Arc<AtomicU64>,
}

impl IdGen {
    /// A generator starting at 1 (identifier 0 is reserved for debugging).
    pub fn new() -> Self {
        Self::starting_at(1)
    }

    /// A generator whose first identifier is `first`. Used by datasets that
    /// replicate the paper's literal identifiers (101, 102, … in Figure 2).
    pub fn starting_at(first: u64) -> Self {
        IdGen {
            next: Arc::new(AtomicU64::new(first)),
        }
    }

    fn bump(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Fresh node identifier.
    pub fn node(&self) -> NodeId {
        NodeId(self.bump())
    }

    /// Fresh edge identifier.
    pub fn edge(&self) -> EdgeId {
        EdgeId(self.bump())
    }

    /// Fresh path identifier.
    pub fn path(&self) -> PathId {
        PathId(self.bump())
    }

    /// Advance the counter so it will never produce `id` again.
    /// Needed when a dataset inserts explicit identifiers.
    pub fn reserve_up_to(&self, id: u64) {
        self.next.fetch_max(id + 1, Ordering::Relaxed);
    }

    /// The next raw value that would be handed out (for diagnostics).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for IdGen {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_fresh_and_monotone() {
        let g = IdGen::new();
        let a = g.node();
        let b = g.edge();
        let c = g.path();
        assert!(a.raw() < b.raw() && b.raw() < c.raw());
    }

    #[test]
    fn clone_shares_counter() {
        let g = IdGen::new();
        let h = g.clone();
        let a = g.node();
        let b = h.node();
        assert_ne!(a, b);
    }

    #[test]
    fn reserve_up_to_skips_reserved_range() {
        let g = IdGen::new();
        g.reserve_up_to(500);
        assert_eq!(g.node().raw(), 501);
        // reserving backwards never rewinds
        g.reserve_up_to(10);
        assert_eq!(g.node().raw(), 502);
    }

    #[test]
    fn element_id_sorts() {
        assert_eq!(ElementId::Node(NodeId(1)).sort(), ElementSort::Node);
        assert_eq!(ElementId::Edge(EdgeId(1)).sort(), ElementSort::Edge);
        assert_eq!(ElementId::Path(PathId(1)).sort(), ElementSort::Path);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(7).to_string(), "#n7");
        assert_eq!(EdgeId(7).to_string(), "#e7");
        assert_eq!(PathId(7).to_string(), "#p7");
    }
}
