//! Literal values (the paper's set `V`).
//!
//! Definition 2.1 names integers, reals, strings, dates and the truth values
//! ⊤/⊥ as examples of literals. We implement exactly those, plus `Null` used
//! only as the result of expressions over absent data (the paper's CASE
//! coalescing); `Null` never occurs inside a stored property set.
//!
//! Values have a *total* order (floats via IEEE total ordering) so every
//! grouping, deduplication and tie-break in the engine is deterministic.

use std::cmp::Ordering;
use std::fmt;

/// A date literal with day precision, ordered chronologically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Date {
    /// Year (astronomical numbering).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

impl Date {
    /// Construct a date, validating month/day ranges (leap years included).
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Date> {
        let mut parts = s.splitn(3, '-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u8 = parts.next()?.parse().ok()?;
        let day: u8 = parts.next()?.parse().ok()?;
        Date::new(year, month, day)
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A literal value from the paper's domain `V`.
#[derive(Clone, Debug)]
pub enum Value {
    /// Truth values ⊤ / ⊥.
    Bool(bool),
    /// Integer literals.
    Int(i64),
    /// Real-number literals.
    Float(f64),
    /// String literals.
    Str(String),
    /// Date literals.
    Date(Date),
    /// Absence marker produced by expression evaluation only
    /// (never stored in a property set).
    Null,
}

impl Value {
    /// Shortcut for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: integers widen to floats. `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view. `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view. `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view. `None` for non-integers.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A short tag for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Date(_) => "date",
            Value::Null => "null",
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Date(_) => 4,
        }
    }

    /// Semantic equality: `1 = 1.0` holds (numbers compare numerically),
    /// everything else compares structurally. `Null` equals nothing,
    /// including itself — mirroring the paper's "absent property" semantics.
    pub fn sem_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (a, b) => a.total_cmp(b) == Ordering::Equal,
        }
    }

    /// Total order used for grouping, sorting and deterministic tie-breaks.
    /// Cross-type comparisons order by type rank; numbers compare
    /// numerically; floats use IEEE total ordering within themselves.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }

    /// Order comparison for `<`, `<=`, `>`, `>=`. `None` when the operands
    /// are of incomparable types or `Null`.
    pub fn partial_order(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(_), Int(_) | Float(_)) | (Float(_), Int(_) | Float(_)) => {
                Some(cmp_f64(self.as_f64()?, other.as_f64()?))
            }
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality (Null == Null) so Value can key maps/sets.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            (a, b) => a.total_cmp(b) == Ordering::Equal && a.rank() == b.rank(),
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
            .then_with(|| self.rank().cmp(&other.rank()))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Numbers hash through their f64 bit pattern so Int(1) and
            // Float(1.0) — which compare equal — hash equal too.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Date> for Value {
    fn from(d: Date) -> Self {
        Value::Date(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_validation() {
        assert!(Date::new(2024, 2, 29).is_some());
        assert!(Date::new(2023, 2, 29).is_none());
        assert!(Date::new(2023, 13, 1).is_none());
        assert!(Date::new(2023, 4, 31).is_none());
        assert!(Date::new(1900, 2, 29).is_none()); // not a leap year
        assert!(Date::new(2000, 2, 29).is_some()); // leap year
    }

    #[test]
    fn date_parse_and_display_roundtrip() {
        let d = Date::parse("2014-12-01").unwrap();
        assert_eq!(d.to_string(), "2014-12-01");
        assert!(Date::parse("2014-13-01").is_none());
        assert!(Date::parse("garbage").is_none());
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int(1).sem_eq(&Value::Float(1.0)));
        assert!(!Value::Int(1).sem_eq(&Value::Float(1.5)));
        assert_eq!(Value::Int(1), Value::Float(1.0));
    }

    #[test]
    fn null_equals_nothing_semantically() {
        assert!(!Value::Null.sem_eq(&Value::Null));
        assert!(!Value::Null.sem_eq(&Value::Int(0)));
        // But structurally (for map keys) Null == Null.
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn partial_order_across_types_is_none() {
        assert!(Value::Int(1).partial_order(&Value::str("a")).is_none());
        assert!(Value::Bool(true).partial_order(&Value::Int(1)).is_none());
        assert_eq!(
            Value::Int(1).partial_order(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_order_is_deterministic_across_types() {
        let mut vals = [
            Value::str("b"),
            Value::Int(2),
            Value::Bool(false),
            Value::Float(1.5),
            Value::str("a"),
            Value::Null,
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::str("a"));
        assert_eq!(vals[5], Value::str("b"));
    }

    #[test]
    fn int_and_equal_float_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }
}
