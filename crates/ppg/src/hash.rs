//! Fast, non-cryptographic hashing for hot identifier-keyed maps.
//!
//! Graph evaluation hashes millions of small integer keys (node/edge/path
//! identifiers and interned symbols). The standard library's SipHash is
//! collision-resistant but slow for such keys; this module provides an
//! FxHash-style multiply-and-rotate hasher (the algorithm used by rustc)
//! implemented in-tree so the workspace stays within its approved
//! dependency set.
//!
//! HashDoS resistance is irrelevant here: keys are internally generated
//! identifiers, never attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed with [`FxHasher`]. Drop-in replacement for `HashMap`.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hash set keyed with [`FxHasher`]. Drop-in replacement for `HashSet`.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc "Fx" hash function: one multiply and one rotate per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn distinct_keys_usually_distinct_hashes() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Fx is not perfect but must not be degenerate.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn byte_stream_matches_word_stream_for_eight_bytes() {
        let mut a = FxHasher::default();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = FxHasher::default();
        b.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
