//! The Path Property Graph itself — Definition 2.1 of the paper.
//!
//! `G = (N, E, P, ρ, δ, λ, σ)`:
//!
//! * `N`, `E`, `P` — the key sets of nodes, edges and paths
//!   ([`node_ids`](PathPropertyGraph::node_ids) /
//!   [`edge_ids`](PathPropertyGraph::edge_ids) /
//!   [`path_ids`](PathPropertyGraph::path_ids));
//! * `ρ : E → N × N` — [`EdgeData::src`] / [`EdgeData::dst`];
//! * `δ : P → FLIST(N ∪ E)` — [`PathData::shape`];
//! * `λ : N ∪ E ∪ P → FSET(L)` — the per-element [`LabelSet`]s;
//! * `σ : (N ∪ E ∪ P) × K → FSET(V)` — the per-element property maps.
//!
//! Graphs also maintain in/out adjacency lists so that matching and path
//! search are O(degree) per expansion.

use crate::error::GraphError;
use crate::hash::FxHashMap;
use crate::ids::{EdgeId, ElementId, NodeId, PathId};
use crate::path::PathShape;
use crate::property::PropertySet;
use crate::stats::GraphStats;
use crate::symbols::{Key, Label, LabelSet};
use crate::value::Value;
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Labels and properties shared by every element sort.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct Attributes {
    /// Labels attached to the element (λ).
    pub labels: LabelSet,
    /// Property map of the element (σ), values are finite sets.
    pub properties: BTreeMap<Key, PropertySet>,
}

impl Attributes {
    /// No labels, no properties.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes with a single label.
    pub fn labeled(label: &str) -> Self {
        Attributes {
            labels: LabelSet::single(Label::new(label)),
            ..Default::default()
        }
    }

    /// Builder-style label addition.
    pub fn with_label(mut self, label: &str) -> Self {
        self.labels.insert(Label::new(label));
        self
    }

    /// Builder-style property addition (singleton value).
    pub fn with_prop(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.set_prop(Key::new(key), PropertySet::single(value.into()));
        self
    }

    /// Builder-style multi-valued property addition.
    pub fn with_prop_set(mut self, key: &str, values: PropertySet) -> Self {
        self.set_prop(Key::new(key), values);
        self
    }

    /// σ(x, k): the property set for `k` (empty set = absent).
    pub fn prop(&self, key: Key) -> PropertySet {
        self.properties.get(&key).cloned().unwrap_or_default()
    }

    /// Borrowing accessor; `None` means absent.
    pub fn prop_ref(&self, key: Key) -> Option<&PropertySet> {
        self.properties.get(&key)
    }

    /// Assign σ(x, k) := values. Setting an empty set removes the entry
    /// (absence and the empty set are indistinguishable, per §2).
    pub fn set_prop(&mut self, key: Key, values: PropertySet) {
        if values.is_empty() {
            self.properties.remove(&key);
        } else {
            self.properties.insert(key, values);
        }
    }

    /// Merge by set union (graph union semantics, §A.5).
    pub fn union_in_place(&mut self, other: &Attributes) {
        self.labels = self.labels.union(&other.labels);
        for (k, vs) in &other.properties {
            let merged = self.prop(*k).union(vs);
            self.set_prop(*k, merged);
        }
    }

    /// Merge by set intersection (graph intersection semantics, §A.5).
    pub fn intersect(&self, other: &Attributes) -> Attributes {
        let mut props = BTreeMap::new();
        for (k, vs) in &self.properties {
            if let Some(other_vs) = other.properties.get(k) {
                let both = vs.intersection(other_vs);
                if !both.is_empty() {
                    props.insert(*k, both);
                }
            }
        }
        Attributes {
            labels: self.labels.intersection(&other.labels),
            properties: props,
        }
    }
}

/// Per-node payload.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct NodeData {
    /// Labels and properties of the node.
    pub attrs: Attributes,
}

/// Per-edge payload: ρ(e) = (src, dst) plus attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EdgeData {
    /// Source node: ρ(e).0.
    pub src: NodeId,
    /// Destination node: ρ(e).1.
    pub dst: NodeId,
    /// Labels and properties of the edge.
    pub attrs: Attributes,
}

/// Per-path payload: δ(p) plus attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PathData {
    /// The walk δ(p): interleaved nodes and edges.
    pub shape: PathShape,
    /// Labels and properties of the path object.
    pub attrs: Attributes,
}

/// Label-partitioned adjacency and node sets, built once per graph (at
/// [`crate::GraphBuilder::build`] or explicitly) and dropped by any
/// subsequent mutation. Matching consults it through
/// [`PathPropertyGraph::out_steps_with_label`] /
/// [`PathPropertyGraph::in_steps_with_label`] /
/// [`PathPropertyGraph::nodes_with_label`], which fall back to scanning
/// when no index is present — so the index is purely an accelerator and
/// never a correctness concern.
#[derive(Clone, Default, Debug)]
struct LabelIndex {
    nodes_by_label: FxHashMap<Label, Vec<NodeId>>,
    /// Per (source node, label): each outgoing edge with its destination,
    /// sorted by edge id — one slice read expands a product state without
    /// a per-edge payload lookup.
    out_by_label: FxHashMap<(NodeId, Label), Vec<(EdgeId, NodeId)>>,
    /// Per (destination node, label): each incoming edge with its source.
    in_by_label: FxHashMap<(NodeId, Label), Vec<(EdgeId, NodeId)>>,
}

/// A Path Property Graph (Definition 2.1).
#[derive(Clone, Default, Debug)]
pub struct PathPropertyGraph {
    nodes: FxHashMap<NodeId, NodeData>,
    edges: FxHashMap<EdgeId, EdgeData>,
    paths: FxHashMap<PathId, PathData>,
    out_adj: FxHashMap<NodeId, Vec<EdgeId>>,
    in_adj: FxHashMap<NodeId, Vec<EdgeId>>,
    label_index: Option<LabelIndex>,
    /// Planner statistics, same lifecycle as the label index: built by
    /// [`crate::GraphBuilder::build`] / [`Self::build_stats`], dropped
    /// by any mutation. Purely advisory — never a correctness concern.
    stats: Option<GraphStats>,
}

impl PathPropertyGraph {
    /// The empty graph G∅.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Insert a node. Re-inserting an existing node unions attributes
    /// (identity-respecting merge).
    pub fn add_node(&mut self, id: NodeId, attrs: Attributes) {
        self.label_index = None;
        self.stats = None;
        match self.nodes.get_mut(&id) {
            Some(existing) => existing.attrs.union_in_place(&attrs),
            None => {
                self.nodes.insert(id, NodeData { attrs });
                self.out_adj.entry(id).or_default();
                self.in_adj.entry(id).or_default();
            }
        }
    }

    /// Insert an edge with endpoints ρ(id) = (src, dst).
    ///
    /// Both endpoints must already be nodes of the graph. Re-inserting the
    /// same identifier with the *same* endpoints unions attributes;
    /// different endpoints are an identity conflict (the paper: "changing
    /// the source and destination of an edge violates its identity").
    pub fn add_edge(
        &mut self,
        id: EdgeId,
        src: NodeId,
        dst: NodeId,
        attrs: Attributes,
    ) -> Result<(), GraphError> {
        if !self.nodes.contains_key(&src) {
            return Err(GraphError::DanglingEdge {
                edge: id,
                node: src,
            });
        }
        if !self.nodes.contains_key(&dst) {
            return Err(GraphError::DanglingEdge {
                edge: id,
                node: dst,
            });
        }
        self.label_index = None;
        self.stats = None;
        match self.edges.get_mut(&id) {
            Some(existing) => {
                if existing.src != src || existing.dst != dst {
                    return Err(GraphError::IdentityConflict(format!(
                        "edge {id} re-inserted with endpoints ({src}, {dst}), \
                         but ρ({id}) = ({}, {})",
                        existing.src, existing.dst
                    )));
                }
                existing.attrs.union_in_place(&attrs);
            }
            None => {
                self.edges.insert(id, EdgeData { src, dst, attrs });
                self.out_adj.entry(src).or_default().push(id);
                self.in_adj.entry(dst).or_default().push(id);
            }
        }
        Ok(())
    }

    /// Insert a stored path. The shape must satisfy condition (3) of
    /// Definition 2.1 against this graph's ρ.
    pub fn add_path(
        &mut self,
        id: PathId,
        shape: PathShape,
        attrs: Attributes,
    ) -> Result<(), GraphError> {
        self.check_path_shape(id, &shape)?;
        // Stored paths don't enter the label index (it only partitions
        // nodes and adjacency) but they do enter the stats.
        self.stats = None;
        match self.paths.get_mut(&id) {
            Some(existing) => {
                if existing.shape != shape {
                    return Err(GraphError::IdentityConflict(format!(
                        "path {id} re-inserted with a different δ"
                    )));
                }
                existing.attrs.union_in_place(&attrs);
            }
            None => {
                self.paths.insert(id, PathData { shape, attrs });
            }
        }
        Ok(())
    }

    fn check_path_shape(&self, id: PathId, shape: &PathShape) -> Result<(), GraphError> {
        for &n in shape.nodes() {
            if !self.nodes.contains_key(&n) {
                return Err(GraphError::PathUnknownNode { path: id, node: n });
            }
        }
        for (i, &e) in shape.edges().iter().enumerate() {
            let Some(data) = self.edges.get(&e) else {
                return Err(GraphError::PathUnknownEdge { path: id, edge: e });
            };
            let a = shape.nodes()[i];
            let b = shape.nodes()[i + 1];
            let forward = data.src == a && data.dst == b;
            let backward = data.src == b && data.dst == a;
            if !forward && !backward {
                return Err(GraphError::PathNotConnected {
                    path: id,
                    edge: e,
                    from: a,
                    to: b,
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// The node payload, if `id ∈ N`.
    pub fn node(&self, id: NodeId) -> Option<&NodeData> {
        self.nodes.get(&id)
    }

    /// The edge payload, if `id ∈ E`.
    pub fn edge(&self, id: EdgeId) -> Option<&EdgeData> {
        self.edges.get(&id)
    }

    /// The path payload, if `id ∈ P`.
    pub fn path(&self, id: PathId) -> Option<&PathData> {
        self.paths.get(&id)
    }

    /// True iff `id ∈ N`.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// True iff `id ∈ E`.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.contains_key(&id)
    }

    /// True iff `id ∈ P`.
    pub fn contains_path(&self, id: PathId) -> bool {
        self.paths.contains_key(&id)
    }

    /// ρ(e) = (src, dst).
    pub fn endpoints(&self, id: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges.get(&id).map(|e| (e.src, e.dst))
    }

    /// The attributes of any element sort, or `None` if absent.
    pub fn attributes(&self, id: ElementId) -> Option<&Attributes> {
        match id {
            ElementId::Node(n) => self.nodes.get(&n).map(|d| &d.attrs),
            ElementId::Edge(e) => self.edges.get(&e).map(|d| &d.attrs),
            ElementId::Path(p) => self.paths.get(&p).map(|d| &d.attrs),
        }
    }

    /// Mutable attributes of any element sort.
    pub fn attributes_mut(&mut self, id: ElementId) -> Option<&mut Attributes> {
        self.label_index = None;
        self.stats = None;
        match id {
            ElementId::Node(n) => self.nodes.get_mut(&n).map(|d| &mut d.attrs),
            ElementId::Edge(e) => self.edges.get_mut(&e).map(|d| &mut d.attrs),
            ElementId::Path(p) => self.paths.get_mut(&p).map(|d| &mut d.attrs),
        }
    }

    /// λ(x): the labels of an element (empty set when the element is
    /// absent, which matching treats as a failed lookup upstream).
    pub fn labels(&self, id: ElementId) -> LabelSet {
        self.attributes(id)
            .map(|a| a.labels.clone())
            .unwrap_or_default()
    }

    /// λ(x) ∋ ℓ.
    pub fn has_label(&self, id: ElementId, label: Label) -> bool {
        self.attributes(id)
            .is_some_and(|a| a.labels.contains(label))
    }

    /// σ(x, k).
    pub fn prop(&self, id: ElementId, key: Key) -> PropertySet {
        self.attributes(id).map(|a| a.prop(key)).unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Adjacency
    // ------------------------------------------------------------------

    /// Edges e with ρ(e) = (node, _), in insertion order.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        self.out_adj.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Edges e with ρ(e) = (_, node), in insertion order.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        self.in_adj.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total degree (in + out).
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_edges(node).len() + self.in_edges(node).len()
    }

    /// Outgoing `(edge, destination)` steps of `node` carrying `label`,
    /// sorted by edge id.
    ///
    /// Served zero-copy from the label index when one is built,
    /// otherwise by filtering the full adjacency list into an owned
    /// vector — callers on hot paths only ever iterate the slice. The
    /// far endpoint rides along so expansion loops (pattern matching,
    /// product-automaton search) never re-fetch the edge payload.
    pub fn out_steps_with_label(&self, node: NodeId, label: Label) -> Cow<'_, [(EdgeId, NodeId)]> {
        if let Some(ix) = &self.label_index {
            return match ix.out_by_label.get(&(node, label)) {
                Some(v) => Cow::Borrowed(v.as_slice()),
                None => Cow::Borrowed(&[]),
            };
        }
        let mut v: Vec<(EdgeId, NodeId)> = self
            .out_edges(node)
            .iter()
            .filter(|e| self.edges[e].attrs.labels.contains(label))
            .map(|e| (*e, self.edges[e].dst))
            .collect();
        v.sort_unstable();
        Cow::Owned(v)
    }

    /// Incoming `(edge, source)` steps of `node` carrying `label`,
    /// sorted by edge id.
    pub fn in_steps_with_label(&self, node: NodeId, label: Label) -> Cow<'_, [(EdgeId, NodeId)]> {
        if let Some(ix) = &self.label_index {
            return match ix.in_by_label.get(&(node, label)) {
                Some(v) => Cow::Borrowed(v.as_slice()),
                None => Cow::Borrowed(&[]),
            };
        }
        let mut v: Vec<(EdgeId, NodeId)> = self
            .in_edges(node)
            .iter()
            .filter(|e| self.edges[e].attrs.labels.contains(label))
            .map(|e| (*e, self.edges[e].src))
            .collect();
        v.sort_unstable();
        Cow::Owned(v)
    }

    /// Build the label-partitioned index over nodes and adjacency.
    /// Called once by [`crate::GraphBuilder::build`]; any later mutation
    /// drops the index and the accessors fall back to scanning.
    pub fn build_label_index(&mut self) {
        let mut ix = LabelIndex::default();
        for (&id, d) in &self.nodes {
            for l in d.attrs.labels.iter() {
                ix.nodes_by_label.entry(l).or_default().push(id);
            }
        }
        for (&id, d) in &self.edges {
            for l in d.attrs.labels.iter() {
                ix.out_by_label
                    .entry((d.src, l))
                    .or_default()
                    .push((id, d.dst));
                ix.in_by_label
                    .entry((d.dst, l))
                    .or_default()
                    .push((id, d.src));
            }
        }
        for v in ix.nodes_by_label.values_mut() {
            v.sort_unstable();
        }
        for v in ix.out_by_label.values_mut() {
            v.sort_unstable();
        }
        for v in ix.in_by_label.values_mut() {
            v.sort_unstable();
        }
        self.label_index = Some(ix);
    }

    /// True when a label index is currently built and valid.
    pub fn has_label_index(&self) -> bool {
        self.label_index.is_some()
    }

    // ------------------------------------------------------------------
    // Planner statistics
    // ------------------------------------------------------------------

    /// Compute and cache the planner statistics (see [`GraphStats`]).
    /// Same lifecycle as the label index: any mutation drops them.
    pub fn build_stats(&mut self) {
        self.stats = Some(GraphStats::compute(self));
    }

    /// The cached planner statistics, if currently valid.
    pub fn stats(&self) -> Option<&GraphStats> {
        self.stats.as_ref()
    }

    /// True when planner statistics are currently built and valid.
    pub fn has_stats(&self) -> bool {
        self.stats.is_some()
    }

    /// Attach externally computed statistics (a persisted side object
    /// reloaded by `gcore-store`). The caller vouches that `stats`
    /// describes this exact graph; since [`GraphStats::compute`] is
    /// deterministic, attaching anything else would only mislead the
    /// planner, never corrupt results. Element counts are checked as a
    /// cheap guard — on mismatch the stats are recomputed instead.
    pub fn set_stats(&mut self, stats: GraphStats) {
        if stats.node_count == self.node_count() as u64
            && stats.edge_count == self.edge_count() as u64
            && stats.path_count == self.path_count() as u64
        {
            self.stats = Some(stats);
        } else {
            self.build_stats();
        }
    }

    // ------------------------------------------------------------------
    // Iteration (deterministic variants sort by identifier)
    // ------------------------------------------------------------------

    /// |N|.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// |E|.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// |P|.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// True for G∅.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty() && self.paths.is_empty()
    }

    /// Node identifiers in arbitrary order (fast).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Edge identifiers in arbitrary order (fast).
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.keys().copied()
    }

    /// Path identifiers in arbitrary order (fast).
    pub fn path_ids(&self) -> impl Iterator<Item = PathId> + '_ {
        self.paths.keys().copied()
    }

    /// Node identifiers sorted ascending — the deterministic order used by
    /// the matcher and by all exports.
    pub fn node_ids_sorted(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.nodes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Edge identifiers sorted ascending (deterministic order).
    pub fn edge_ids_sorted(&self) -> Vec<EdgeId> {
        let mut v: Vec<EdgeId> = self.edges.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Path identifiers sorted ascending (deterministic order).
    pub fn path_ids_sorted(&self) -> Vec<PathId> {
        let mut v: Vec<PathId> = self.paths.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Nodes carrying `label`, sorted by id. Served from the label index
    /// when one is built, otherwise by a full scan.
    pub fn nodes_with_label(&self, label: Label) -> Vec<NodeId> {
        if let Some(ix) = &self.label_index {
            return ix.nodes_by_label.get(&label).cloned().unwrap_or_default();
        }
        let mut v: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|(_, d)| d.attrs.labels.contains(label))
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Edges carrying `label`, sorted by id.
    pub fn edges_with_label(&self, label: Label) -> Vec<EdgeId> {
        let mut v: Vec<EdgeId> = self
            .edges
            .iter()
            .filter(|(_, d)| d.attrs.labels.contains(label))
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Paths carrying `label`, sorted by id.
    pub fn paths_with_label(&self, label: Label) -> Vec<PathId> {
        let mut v: Vec<PathId> = self
            .paths
            .iter()
            .filter(|(_, d)| d.attrs.labels.contains(label))
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Check every well-formedness condition of Definition 2.1. The public
    /// mutation API maintains these invariants; this is the belt-and-braces
    /// check used by tests and after bulk operations.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (&id, e) in &self.edges {
            if !self.nodes.contains_key(&e.src) {
                return Err(GraphError::DanglingEdge {
                    edge: id,
                    node: e.src,
                });
            }
            if !self.nodes.contains_key(&e.dst) {
                return Err(GraphError::DanglingEdge {
                    edge: id,
                    node: e.dst,
                });
            }
        }
        for (&id, p) in &self.paths {
            self.check_path_shape(id, &p.shape)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Structural equality
    // ------------------------------------------------------------------

    /// Equality of the tuples (N, E, P, ρ, δ, λ, σ). Unlike `==` on the
    /// struct (which compares hash maps directly and is also fine), this
    /// reports the first difference for test diagnostics.
    pub fn same_as(&self, other: &PathPropertyGraph) -> Result<(), String> {
        if self.node_ids_sorted() != other.node_ids_sorted() {
            return Err("node sets differ".into());
        }
        if self.edge_ids_sorted() != other.edge_ids_sorted() {
            return Err("edge sets differ".into());
        }
        if self.path_ids_sorted() != other.path_ids_sorted() {
            return Err("path sets differ".into());
        }
        for id in self.node_ids_sorted() {
            if self.nodes[&id] != other.nodes[&id] {
                return Err(format!("node {id} differs"));
            }
        }
        for id in self.edge_ids_sorted() {
            if self.edges[&id] != other.edges[&id] {
                return Err(format!("edge {id} differs"));
            }
        }
        for id in self.path_ids_sorted() {
            if self.paths[&id] != other.paths[&id] {
                return Err(format!("path {id} differs"));
            }
        }
        Ok(())
    }
}

impl PartialEq for PathPropertyGraph {
    fn eq(&self, other: &Self) -> bool {
        self.same_as(other).is_ok()
    }
}

impl Eq for PathPropertyGraph {}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }
    fn e(i: u64) -> EdgeId {
        EdgeId(i)
    }
    fn p(i: u64) -> PathId {
        PathId(i)
    }

    fn two_node_graph() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        g.add_node(n(1), Attributes::labeled("Person").with_prop("name", "Ann"));
        g.add_node(n(2), Attributes::labeled("Person"));
        g.add_edge(e(10), n(1), n(2), Attributes::labeled("knows"))
            .unwrap();
        g
    }

    #[test]
    fn basic_construction_and_lookup() {
        let g = two_node_graph();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.endpoints(e(10)), Some((n(1), n(2))));
        assert!(g.has_label(n(1).into(), Label::new("Person")));
        assert_eq!(
            g.prop(n(1).into(), Key::new("name")),
            PropertySet::from("Ann")
        );
        assert!(g.prop(n(1).into(), Key::new("missing")).is_empty());
        g.validate().unwrap();
    }

    #[test]
    fn dangling_edge_rejected() {
        let mut g = PathPropertyGraph::new();
        g.add_node(n(1), Attributes::new());
        let err = g
            .add_edge(e(10), n(1), n(99), Attributes::new())
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::DanglingEdge {
                edge: e(10),
                node: n(99)
            }
        );
    }

    #[test]
    fn reinsert_node_unions_attributes() {
        let mut g = two_node_graph();
        g.add_node(
            n(1),
            Attributes::labeled("Manager").with_prop("name", "Annie"),
        );
        let attrs = g.attributes(n(1).into()).unwrap();
        assert_eq!(attrs.labels.len(), 2);
        let names = attrs.prop(Key::new("name"));
        assert_eq!(names.len(), 2); // {"Ann", "Annie"}
    }

    #[test]
    fn reinsert_edge_with_other_endpoints_is_identity_conflict() {
        let mut g = two_node_graph();
        let err = g
            .add_edge(e(10), n(2), n(1), Attributes::new())
            .unwrap_err();
        assert!(matches!(err, GraphError::IdentityConflict(_)));
    }

    #[test]
    fn path_insertion_validates_adjacency() {
        let mut g = two_node_graph();
        g.add_node(n(3), Attributes::new());
        g.add_edge(e(11), n(3), n(2), Attributes::new()).unwrap();
        // Backward traversal of e11 (2 -> 3) is allowed by Def 2.1 (3)(iii).
        let shape = PathShape::new(vec![n(1), n(2), n(3)], vec![e(10), e(11)]).unwrap();
        g.add_path(p(100), shape, Attributes::labeled("route"))
            .unwrap();
        g.validate().unwrap();

        // An edge that connects neither direction is rejected.
        let bad = PathShape::new(vec![n(2), n(1)], vec![e(11)]).unwrap();
        let err = g.add_path(p(101), bad, Attributes::new()).unwrap_err();
        assert!(matches!(err, GraphError::PathNotConnected { .. }));
    }

    #[test]
    fn path_with_unknown_parts_rejected() {
        let mut g = two_node_graph();
        let shape = PathShape::new(vec![n(1), n(9)], vec![e(10)]).unwrap();
        assert!(matches!(
            g.add_path(p(1), shape, Attributes::new()),
            Err(GraphError::PathUnknownNode { .. })
        ));
        let shape = PathShape::new(vec![n(1), n(2)], vec![e(99)]).unwrap();
        assert!(matches!(
            g.add_path(p(1), shape, Attributes::new()),
            Err(GraphError::PathUnknownEdge { .. })
        ));
    }

    #[test]
    fn adjacency_lists() {
        let g = two_node_graph();
        assert_eq!(g.out_edges(n(1)), &[e(10)]);
        assert_eq!(g.in_edges(n(2)), &[e(10)]);
        assert_eq!(g.out_edges(n(2)), &[] as &[EdgeId]);
        assert_eq!(g.degree(n(1)), 1);
    }

    #[test]
    fn multiple_edges_between_same_nodes() {
        // "The function ρ allows us to have several edges between the same
        //  pairs of nodes."
        let mut g = two_node_graph();
        g.add_edge(e(11), n(1), n(2), Attributes::labeled("likes"))
            .unwrap();
        assert_eq!(g.out_edges(n(1)), &[e(10), e(11)]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn label_indexes_sorted() {
        let mut g = two_node_graph();
        g.add_node(n(0), Attributes::labeled("Person"));
        assert_eq!(
            g.nodes_with_label(Label::new("Person")),
            vec![n(0), n(1), n(2)]
        );
        assert_eq!(g.edges_with_label(Label::new("knows")), vec![e(10)]);
    }

    #[test]
    fn label_adjacency_scan_and_index_agree() {
        let mut g = two_node_graph();
        g.add_node(n(3), Attributes::new());
        g.add_edge(e(11), n(1), n(3), Attributes::labeled("likes"))
            .unwrap();
        g.add_edge(e(12), n(3), n(2), Attributes::labeled("knows"))
            .unwrap();
        let knows = Label::new("knows");
        let likes = Label::new("likes");

        // Fallback path (no index yet).
        assert!(!g.has_label_index());
        assert_eq!(
            g.out_steps_with_label(n(1), knows).as_ref(),
            [(e(10), n(2))]
        );
        assert_eq!(
            g.out_steps_with_label(n(1), likes).as_ref(),
            [(e(11), n(3))]
        );
        assert_eq!(
            g.in_steps_with_label(n(2), knows).as_ref(),
            [(e(10), n(1)), (e(12), n(3))]
        );
        assert!(g.out_steps_with_label(n(2), knows).is_empty());

        // Indexed path must agree.
        g.build_label_index();
        assert!(g.has_label_index());
        assert_eq!(
            g.out_steps_with_label(n(1), knows).as_ref(),
            [(e(10), n(2))]
        );
        assert_eq!(
            g.out_steps_with_label(n(1), likes).as_ref(),
            [(e(11), n(3))]
        );
        assert_eq!(
            g.in_steps_with_label(n(2), knows).as_ref(),
            [(e(10), n(1)), (e(12), n(3))]
        );
        assert_eq!(g.nodes_with_label(Label::new("Person")), vec![n(1), n(2)]);

        // Mutation drops the index; answers stay correct via fallback.
        g.add_edge(e(13), n(2), n(1), Attributes::labeled("knows"))
            .unwrap();
        assert!(!g.has_label_index());
        assert_eq!(g.in_steps_with_label(n(1), knows).as_ref(), [(e(13), n(2))]);
    }

    #[test]
    fn structural_equality() {
        let a = two_node_graph();
        let mut b = two_node_graph();
        assert_eq!(a, b);
        b.add_node(n(3), Attributes::new());
        assert_ne!(a, b);
        assert!(a.same_as(&b).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = PathPropertyGraph::new();
        assert!(g.is_empty());
        g.validate().unwrap();
    }
}
