//! Instance-based interning of literal [`Value`]s.
//!
//! [`symbols`](crate::symbols) interns labels and property keys into
//! process-global `u32` symbols; binding tables need the same trick for
//! the *values* that flow through them (property unrolling, COST
//! variables, FROM columns), but with a crucial difference: value pools
//! are **per evaluation**, not global, so a long-running engine never
//! accumulates every literal it has ever seen. A [`ValueInterner`] is an
//! append-only pool shared (via `Arc`) by all the binding tables of one
//! evaluation; equal values (under `Value`'s structural equality, so
//! `Int(1)` and `Float(1.0)` unify) always receive the same code, which
//! lets the tables compare and hash encoded `u64` cells instead of
//! cloning `Value`s.

use crate::hash::FxHashMap;
use crate::value::Value;
use std::sync::{Arc, RwLock};

/// An append-only pool of distinct [`Value`]s, shared by the binding
/// tables of one evaluation. Interning is idempotent: equal values map
/// to equal codes.
///
/// Interior mutability (an `RwLock`) keeps interning available through
/// the shared `Arc` handles the tables hold; the pool only ever grows,
/// so codes handed out earlier stay valid forever.
#[derive(Default, Debug)]
pub struct ValueInterner {
    inner: RwLock<Inner>,
    /// Memoized [`rank_snapshot`](Self::rank_snapshot), keyed by the
    /// pool size it was computed at (the pool is append-only, so size
    /// doubles as a generation counter).
    rank_cache: RwLock<Option<(usize, Arc<Vec<u32>>)>>,
    /// Memoized [`snapshot`](Self::snapshot), keyed the same way.
    value_cache: RwLock<Option<(usize, Arc<Vec<Value>>)>>,
}

#[derive(Default, Debug)]
struct Inner {
    codes: FxHashMap<Value, u32>,
    values: Vec<Value>,
}

impl ValueInterner {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `v`, returning its canonical code. Idempotent.
    pub fn intern(&self, v: &Value) -> u32 {
        if let Some(&c) = self.inner.read().unwrap().codes.get(v) {
            return c;
        }
        let mut inner = self.inner.write().unwrap();
        if let Some(&c) = inner.codes.get(v) {
            return c; // raced between read and write lock
        }
        let c = inner.values.len() as u32;
        inner.values.push(v.clone());
        inner.codes.insert(v.clone(), c);
        c
    }

    /// The value behind a code (cloned out of the pool).
    ///
    /// # Panics
    /// If `code` was never handed out by this pool.
    pub fn resolve(&self, code: u32) -> Value {
        self.inner.read().unwrap().values[code as usize].clone()
    }

    /// Apply `f` to the value behind a code, *borrowed* from the pool —
    /// one read lock, no clone. The borrowing counterpart of
    /// [`resolve`](Self::resolve) for callers that only inspect the
    /// value (comparisons, hashing, truthiness).
    ///
    /// # Panics
    /// If `code` was never handed out by this pool.
    pub fn with_resolved<R>(&self, code: u32, f: impl FnOnce(&Value) -> R) -> R {
        f(&self.inner.read().unwrap().values[code as usize])
    }

    /// A snapshot of every value interned so far, indexable by code —
    /// the per-loop decode accessor: literal-heavy loops fetch it once
    /// and index it per cell, paying no lock and no clone per cell.
    ///
    /// Memoized by pool size (the pool is append-only, so codes in any
    /// existing table are always covered by a fresh snapshot); repeated
    /// calls against a stable pool cost one `Arc` clone.
    pub fn snapshot(&self) -> Arc<Vec<Value>> {
        let inner = self.inner.read().unwrap();
        let n = inner.values.len();
        if let Some((at, cached)) = self.value_cache.read().unwrap().as_ref() {
            if *at == n {
                return cached.clone();
            }
        }
        let snap = Arc::new(inner.values.clone());
        *self.value_cache.write().unwrap() = Some((n, snap.clone()));
        snap
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the pool's value order: `rank[code]` is the position
    /// of `code`'s value in the `Value` total order over all values
    /// interned so far. Sorting encoded cells by rank therefore
    /// reproduces the order a `Vec<Value>` sort would give, which keeps
    /// binding-table row order deterministic and independent of
    /// interning order.
    ///
    /// Memoized: the snapshot is recomputed only when the pool has grown
    /// since the last call, so repeated table normalizations against a
    /// stable pool cost one `Arc` clone instead of a sort.
    pub fn rank_snapshot(&self) -> Arc<Vec<u32>> {
        let inner = self.inner.read().unwrap();
        let n = inner.values.len();
        if let Some((at, cached)) = self.rank_cache.read().unwrap().as_ref() {
            if *at == n {
                return cached.clone();
            }
        }
        let mut by_value: Vec<u32> = (0..n as u32).collect();
        by_value.sort_unstable_by(|&a, &b| inner.values[a as usize].cmp(&inner.values[b as usize]));
        let mut rank = vec![0u32; n];
        for (pos, &code) in by_value.iter().enumerate() {
            rank[code as usize] = pos as u32;
        }
        let rank = Arc::new(rank);
        *self.rank_cache.write().unwrap() = Some((n, rank.clone()));
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let pool = ValueInterner::new();
        let a = pool.intern(&Value::Int(7));
        let b = pool.intern(&Value::str("x"));
        let c = pool.intern(&Value::Int(7));
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.resolve(a), Value::Int(7));
        assert_eq!(pool.resolve(b), Value::str("x"));
    }

    #[test]
    fn numerically_equal_values_unify() {
        // Value's structural equality makes Int(1) == Float(1.0); the
        // pool must hand both the same code or encoded joins would miss.
        let pool = ValueInterner::new();
        assert_eq!(pool.intern(&Value::Int(1)), pool.intern(&Value::Float(1.0)));
    }

    #[test]
    fn with_resolved_borrows_and_snapshot_memoizes() {
        let pool = ValueInterner::new();
        let a = pool.intern(&Value::str("hello"));
        assert!(pool.with_resolved(a, |v| matches!(v, Value::Str(_))));
        assert_eq!(pool.with_resolved(a, |v| v.clone()), Value::str("hello"));

        let s1 = pool.snapshot();
        let s2 = pool.snapshot();
        assert!(Arc::ptr_eq(&s1, &s2)); // stable pool ⇒ cached snapshot
        assert_eq!(s1[a as usize], Value::str("hello"));

        let b = pool.intern(&Value::Int(9));
        let s3 = pool.snapshot();
        assert!(!Arc::ptr_eq(&s1, &s3)); // growth invalidates the cache
        assert_eq!(s3[b as usize], Value::Int(9));
    }

    #[test]
    fn rank_snapshot_orders_by_value_not_by_code() {
        let pool = ValueInterner::new();
        let z = pool.intern(&Value::str("z"));
        let a = pool.intern(&Value::str("a"));
        let one = pool.intern(&Value::Int(1));
        let rank = pool.rank_snapshot();
        // Value order: Int(1) < "a" < "z" (numbers rank below strings).
        assert!(rank[one as usize] < rank[a as usize]);
        assert!(rank[a as usize] < rank[z as usize]);
    }
}
