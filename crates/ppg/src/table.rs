//! Tabular data for the §5 extensions of G-CORE.
//!
//! Section 5 extends the language with `SELECT` (projecting bindings into a
//! table) and two ways of importing tables (`FROM <table>` and
//! `MATCH (o) ON <table>`). This module provides the table type shared by
//! those features, plus a small CSV-style loader so examples can ship data
//! as plain text without external dependencies.

use crate::value::Value;
use std::fmt;

/// A named-column table of literal values. `Null` marks absent cells.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

/// Errors raised by table construction and parsing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TableError {
    /// A row's arity differs from the header's.
    RowArity {
        /// Number of header columns.
        expected: usize,
        /// Number of cells in the offending row.
        got: usize,
        /// Zero-based row index.
        row: usize,
    },
    /// Two columns share a name.
    DuplicateColumn(String),
    /// The CSV text had no header line.
    MissingHeader,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RowArity { expected, got, row } => {
                write!(f, "row {row} has {got} cells, expected {expected}")
            }
            TableError::DuplicateColumn(c) => write!(f, "duplicate column name {c:?}"),
            TableError::MissingHeader => write!(f, "table text has no header line"),
        }
    }
}

impl std::error::Error for TableError {}

impl Table {
    /// An empty table with the given header.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Result<Self, TableError> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(TableError::DuplicateColumn(c.clone()));
            }
        }
        Ok(Table {
            columns,
            rows: Vec::new(),
        })
    }

    /// Append a row; arity-checked.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), TableError> {
        if row.len() != self.columns.len() {
            return Err(TableError::RowArity {
                expected: self.columns.len(),
                got: row.len(),
                row: self.rows.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Column names, in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: &str) -> Option<&Value> {
        let c = self.column_index(col)?;
        self.rows.get(row).map(|r| &r[c])
    }

    /// Sort rows by the total order of values, column by column — gives
    /// deterministic output for tests and display.
    pub fn sorted(mut self) -> Self {
        self.rows.sort();
        self
    }

    /// Parse a simple comma-separated text table. The first line is the
    /// header. Cells are parsed as (in order): empty → `Null`, `true`/
    /// `false` → bool, integer, float, `YYYY-MM-DD` date, else string.
    /// Double-quoted cells are always strings and may contain commas.
    pub fn parse_csv(text: &str) -> Result<Self, TableError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or(TableError::MissingHeader)?;
        let mut table = Table::new(split_csv_line(header))?;
        for line in lines {
            let cells = split_csv_line(line);
            let row = cells.into_iter().map(|c| parse_cell(&c)).collect();
            table.push_row(row)?;
        }
        Ok(table)
    }
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut was_quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(ch) = chars.next() {
        match ch {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => {
                in_quotes = true;
                was_quoted = true;
            }
            ',' if !in_quotes => {
                cells.push(finish_cell(&mut cur, &mut was_quoted));
            }
            _ => cur.push(ch),
        }
    }
    cells.push(finish_cell(&mut cur, &mut was_quoted));
    cells
}

fn finish_cell(cur: &mut String, was_quoted: &mut bool) -> String {
    let cell = if *was_quoted {
        // Quoted cells keep their text verbatim, marked with a sentinel
        // prefix so parse_cell skips type inference.
        format!("\u{1}{cur}")
    } else {
        cur.trim().to_string()
    };
    cur.clear();
    *was_quoted = false;
    cell
}

fn parse_cell(cell: &str) -> Value {
    if let Some(text) = cell.strip_prefix('\u{1}') {
        return Value::str(text);
    }
    if cell.is_empty() {
        return Value::Null;
    }
    match cell {
        "true" | "TRUE" => return Value::Bool(true),
        "false" | "FALSE" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = cell.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = cell.parse::<f64>() {
        return Value::Float(f);
    }
    if let Some(d) = crate::value::Date::parse(cell) {
        return Value::Date(d);
    }
    Value::str(cell)
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c:<width$}", width = widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "-+-")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Date;

    #[test]
    fn build_and_access() {
        let mut t = Table::new(vec!["custName", "prodCode"]).unwrap();
        t.push_row(vec![Value::str("Ann"), Value::Int(1)]).unwrap();
        t.push_row(vec![Value::str("Bob"), Value::Int(2)]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, "custName"), Some(&Value::str("Ann")));
        assert_eq!(t.cell(1, "prodCode"), Some(&Value::Int(2)));
        assert!(t.cell(0, "nope").is_none());
    }

    #[test]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]).unwrap();
        let err = t.push_row(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            TableError::RowArity {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(matches!(
            Table::new(vec!["a", "a"]),
            Err(TableError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn csv_type_inference() {
        let t = Table::parse_csv(
            "name,age,score,member,joined,note\n\
             Ann,41,3.5,true,2020-01-02,hello\n\
             Bob,,,,false,\"quoted, text\"\n",
        )
        .unwrap();
        assert_eq!(t.cell(0, "age"), Some(&Value::Int(41)));
        assert_eq!(t.cell(0, "score"), Some(&Value::Float(3.5)));
        assert_eq!(t.cell(0, "member"), Some(&Value::Bool(true)));
        assert_eq!(
            t.cell(0, "joined"),
            Some(&Value::Date(Date::new(2020, 1, 2).unwrap()))
        );
        assert_eq!(t.cell(1, "age"), Some(&Value::Null));
        assert_eq!(t.cell(1, "note"), Some(&Value::str("quoted, text")));
    }

    #[test]
    fn quoted_cells_stay_strings() {
        let t = Table::parse_csv("v\n\"42\"\n").unwrap();
        assert_eq!(t.cell(0, "v"), Some(&Value::str("42")));
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut t = Table::new(vec!["x"]).unwrap();
        t.push_row(vec![Value::Int(3)]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        t.push_row(vec![Value::Int(2)]).unwrap();
        let s = t.sorted();
        let xs: Vec<i64> = s.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(xs, vec![1, 2, 3]);
    }

    #[test]
    fn display_renders_aligned() {
        let mut t = Table::new(vec!["name", "n"]).unwrap();
        t.push_row(vec![Value::str("Ann"), Value::Int(1)]).unwrap();
        let s = t.to_string();
        assert!(s.contains("name | n"));
        assert!(s.contains("Ann"));
    }
}
