//! Name pools for the deterministic SNB-style generator.

/// First names drawn by the generator (deterministically, by seed).
pub const FIRST_NAMES: &[&str] = &[
    "John", "Peter", "Alice", "Celine", "Frank", "Ana", "Bryn", "Carmen", "Deniz", "Emil", "Farah",
    "Goran", "Hana", "Igor", "Jana", "Kofi", "Lena", "Marek", "Nadia", "Otto", "Priya", "Quentin",
    "Rosa", "Sven", "Tariq", "Uma", "Viktor", "Wanda", "Xin", "Yara", "Zoltan", "Aiko", "Bela",
    "Chiara", "Dmitri", "Esra", "Filip", "Greta", "Hugo", "Ines",
];

/// Last names drawn by the generator.
pub const LAST_NAMES: &[&str] = &[
    "Doe", "Smith", "Bishop", "Mayer", "Gold", "Alvarez", "Bauer", "Costa", "Dimitrov", "Eriksen",
    "Fischer", "Garcia", "Hansen", "Ivanov", "Jansen", "Kovacs", "Larsen", "Moreau", "Novak",
    "Olsen", "Petrov", "Quirke", "Rossi", "Schmidt", "Tanaka", "Urbano", "Vasquez", "Weber", "Xu",
    "Yilmaz", "Zhang", "Andersen", "Brandt", "Cohen", "Duval", "Egger", "Farkas", "Gruber",
    "Horvat", "Ibrahim",
];

/// City names (cycled with an index suffix past the pool).
pub const CITIES: &[&str] = &[
    "Houston",
    "Austin",
    "Leiden",
    "Santiago",
    "Eindhoven",
    "Dresden",
    "Talca",
    "Amsterdam",
    "Walldorf",
    "Redwood",
    "Antofagasta",
    "Utrecht",
    "Ghent",
    "Aachen",
    "Malmo",
    "Porto",
];

/// Tag names (composers first — the guided tour is about finding Wagner
/// lovers — then generic interests).
pub const TAGS: &[&str] = &[
    "Wagner",
    "Mozart",
    "Beethoven",
    "Verdi",
    "Puccini",
    "Mahler",
    "Chess",
    "Cycling",
    "Databases",
    "Graphs",
    "Sailing",
    "Photography",
    "Cooking",
    "Hiking",
    "Jazz",
    "Cinema",
];

/// Company names (the tour's employers first).
pub const COMPANIES: &[&str] = &[
    "Acme",
    "HAL",
    "CWI",
    "MIT",
    "Globex",
    "Initech",
    "Umbrella",
    "Stark",
    "Wayne",
    "Tyrell",
    "Aperture",
    "Cyberdyne",
];
