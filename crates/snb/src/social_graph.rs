//! The toy LDBC-SNB instance of **Figure 4** (`social_graph`) plus the
//! auxiliary `company_graph` of the multi-graph examples.
//!
//! The guided tour of §3 pins down the instance:
//!
//! * five persons — John Doe and Alice (employer `Acme`), Celine
//!   (employer `HAL`), Frank Gold (multi-valued employer `{CWI, MIT}`)
//!   and Peter (unemployed: no `employer` property at all);
//! * `knows` edges are **bi-directional pairs** (the figure caption);
//! * two Wagner lovers live in John's city and are reachable from John
//!   only via Peter, so that the expert-finding query produces exactly
//!   one `wagnerFriend` edge John→Peter with `score = 2`;
//! * a `Post`/`Comment` thread structure whose per-pair direct-reply
//!   counts give Figure 5's `nr_messages`: John↔Peter = 3,
//!   Peter↔Frank = 2, Peter↔Celine = 1, John↔Alice = 0;
//! * `company_graph` contains unconnected Company nodes for Acme, HAL,
//!   CWI and MIT.
//!
//! Message/city identifiers that the paper leaves implicit are assigned
//! by the builder; tests address persons by name, never by raw id.

use gcore_ppg::{
    Attributes, GraphBuilder, IdGen, NodeId, PathPropertyGraph, PropertySet, Table, Value,
};

/// The Figure 4 dataset: `social_graph`, `company_graph`, and the node
/// ids of every named element (for direct assertions in tests).
pub struct SocialDataset {
    /// The main graph of Figure 4.
    pub social_graph: PathPropertyGraph,
    /// The unconnected company nodes used by the data-integration tour.
    pub company_graph: PathPropertyGraph,
    /// The §5 `orders` table (customer names × product codes).
    pub orders: Table,
    /// John Doe.
    pub john: NodeId,
    /// Peter (unemployed; the hub towards the Wagner lovers).
    pub peter: NodeId,
    /// Alice (works at Acme).
    pub alice: NodeId,
    /// Celine (works at HAL; Wagner lover).
    pub celine: NodeId,
    /// Frank Gold (works at CWI and MIT; Wagner lover).
    pub frank: NodeId,
    /// The city everyone but Alice lives in.
    pub houston: NodeId,
    /// Alice's city.
    pub austin: NodeId,
    /// The `:Tag {name: 'Wagner'}` node.
    pub wagner: NodeId,
    /// Company nodes in `company_graph`: Acme, HAL, CWI, MIT.
    pub companies: [NodeId; 4],
}

/// Build the Figure 4 dataset against a shared identifier generator.
pub fn social_dataset(idgen: &IdGen) -> SocialDataset {
    let mut b = GraphBuilder::new(idgen.clone());

    // ---- persons -----------------------------------------------------
    let john = b.node(
        Attributes::labeled("Person")
            .with_prop("firstName", "John")
            .with_prop("lastName", "Doe")
            .with_prop("employer", "Acme"),
    );
    let peter = b.node(
        Attributes::labeled("Person")
            .with_prop("firstName", "Peter")
            .with_prop("lastName", "Smith"),
        // no employer property: Peter is unemployed (§3).
    );
    let alice = b.node(
        Attributes::labeled("Person")
            .with_prop("firstName", "Alice")
            .with_prop("lastName", "Bishop")
            .with_prop("employer", "Acme"),
    );
    let celine = b.node(
        Attributes::labeled("Person")
            .with_prop("firstName", "Celine")
            .with_prop("lastName", "Mayer")
            .with_prop("employer", "HAL"),
    );
    let frank = b.node(
        Attributes::labeled("Person")
            .with_prop("firstName", "Frank")
            .with_prop("lastName", "Gold")
            .with_prop_set(
                "employer",
                PropertySet::from_values([Value::str("CWI"), Value::str("MIT")]),
            ),
    );

    // ---- places and tags ----------------------------------------------
    let houston = b.node(Attributes::labeled("City").with_prop("name", "Houston"));
    let austin = b.node(Attributes::labeled("City").with_prop("name", "Austin"));
    let wagner = b.node(Attributes::labeled("Tag").with_prop("name", "Wagner"));
    let mozart = b.node(Attributes::labeled("Tag").with_prop("name", "Mozart"));

    for p in [john, peter, celine, frank] {
        b.edge(p, houston, Attributes::labeled("isLocatedIn"));
    }
    b.edge(alice, austin, Attributes::labeled("isLocatedIn"));

    // The two Wagner lovers; Alice likes Mozart (none of John's direct
    // friends likes Wagner).
    b.edge(celine, wagner, Attributes::labeled("hasInterest"));
    b.edge(frank, wagner, Attributes::labeled("hasInterest"));
    b.edge(alice, mozart, Attributes::labeled("hasInterest"));

    // ---- the knows topology (bi-directional pairs) ---------------------
    b.edge_bidi(john, peter, Attributes::labeled("knows"));
    b.edge_bidi(john, alice, Attributes::labeled("knows"));
    b.edge_bidi(peter, frank, Attributes::labeled("knows"));
    b.edge_bidi(peter, celine, Attributes::labeled("knows"));

    // ---- message threads ------------------------------------------------
    // nr_messages counts direct reply links between a pair's messages
    // (in either direction), so:
    //   John ↔ Peter : P1←C1←C2←C3            → 3 links
    //   Peter ↔ Frank: P2←C4←C5               → 2 links
    //   Peter ↔ Celine: P3←C6                 → 1 link
    //   John ↔ Alice : —                      → 0 (OPTIONAL ⇒ 0)
    let msg = |b: &mut GraphBuilder, label: &str, creator: NodeId, content: &str| {
        let m = b.node(Attributes::labeled(label).with_prop("content", content));
        b.edge(m, creator, Attributes::labeled("has_creator"));
        m
    };
    let reply = |b: &mut GraphBuilder, child: NodeId, parent: NodeId| {
        b.edge(child, parent, Attributes::labeled("reply_of"));
    };

    let p1 = msg(&mut b, "Post", john, "Anyone up for the opera?");
    let c1 = msg(&mut b, "Comment", peter, "Which one?");
    let c2 = msg(&mut b, "Comment", john, "Tannhäuser!");
    let c3 = msg(&mut b, "Comment", peter, "Ask Frank or Celine.");
    reply(&mut b, c1, p1);
    reply(&mut b, c2, c1);
    reply(&mut b, c3, c2);

    let p2 = msg(&mut b, "Post", peter, "Weekend plans?");
    let c4 = msg(&mut b, "Comment", frank, "Concert hall, as always.");
    let c5 = msg(&mut b, "Comment", peter, "Count me in.");
    reply(&mut b, c4, p2);
    reply(&mut b, c5, c4);

    let p3 = msg(&mut b, "Post", celine, "New production of the Ring cycle!");
    let c6 = msg(&mut b, "Comment", peter, "Celine, you have to go.");
    reply(&mut b, c6, p3);

    let social_graph = b.build();

    // ---- company_graph ---------------------------------------------------
    let mut cb = GraphBuilder::new(idgen.clone());
    let companies = ["Acme", "HAL", "CWI", "MIT"]
        .map(|name| cb.node(Attributes::labeled("Company").with_prop("name", name)));
    let company_graph = cb.build();

    // ---- the §5 orders table ---------------------------------------------
    let mut orders = Table::new(vec!["custName", "prodCode"]).expect("distinct columns");
    for (cust, prod) in [
        ("Ann", "P-100"),
        ("Ann", "P-200"),
        ("Bob", "P-100"),
        ("Cleo", "P-300"),
        ("Cleo", "P-300"), // duplicate order rows collapse per GROUP
    ] {
        orders
            .push_row(vec![Value::str(cust), Value::str(prod)])
            .expect("row arity");
    }

    SocialDataset {
        social_graph,
        company_graph,
        orders,
        john,
        peter,
        alice,
        celine,
        frank,
        houston,
        austin,
        wagner,
        companies,
    }
}

/// Convenience: the dataset with a private id generator.
pub fn social_dataset_standalone() -> SocialDataset {
    social_dataset(&IdGen::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_ppg::{Key, Label};

    #[test]
    fn five_persons_with_paper_employers() {
        let d = social_dataset_standalone();
        let g = &d.social_graph;
        assert_eq!(g.nodes_with_label(Label::new("Person")).len(), 5);
        assert_eq!(g.prop(d.john.into(), Key::new("employer")), "Acme".into());
        assert!(g.prop(d.peter.into(), Key::new("employer")).is_empty());
        let frank_emp = g.prop(d.frank.into(), Key::new("employer"));
        assert_eq!(frank_emp.len(), 2);
        assert!(frank_emp.contains(&Value::str("CWI")));
        assert!(frank_emp.contains(&Value::str("MIT")));
    }

    #[test]
    fn knows_edges_are_bidirectional_pairs() {
        let d = social_dataset_standalone();
        let g = &d.social_graph;
        let knows = g.edges_with_label(Label::new("knows"));
        assert_eq!(knows.len(), 8); // 4 pairs × 2 directions
        for e in knows {
            let (s, t) = g.endpoints(e).unwrap();
            let reverse = g
                .edges_with_label(Label::new("knows"))
                .into_iter()
                .any(|e2| g.endpoints(e2) == Some((t, s)));
            assert!(reverse, "every knows edge has its mirror");
        }
    }

    #[test]
    fn wagner_lovers_live_in_johns_city() {
        let d = social_dataset_standalone();
        let g = &d.social_graph;
        for lover in [d.celine, d.frank] {
            let has_interest = g.out_edges(lover).iter().any(|&e| {
                g.has_label(e.into(), Label::new("hasInterest"))
                    && g.endpoints(e).unwrap().1 == d.wagner
            });
            assert!(has_interest);
            let in_houston = g.out_edges(lover).iter().any(|&e| {
                g.has_label(e.into(), Label::new("isLocatedIn"))
                    && g.endpoints(e).unwrap().1 == d.houston
            });
            assert!(in_houston);
        }
        // John's direct friends (Peter, Alice) do not like Wagner.
        for friend in [d.peter, d.alice] {
            let likes_wagner = g.out_edges(friend).iter().any(|&e| {
                g.has_label(e.into(), Label::new("hasInterest"))
                    && g.endpoints(e).unwrap().1 == d.wagner
            });
            assert!(!likes_wagner);
        }
    }

    #[test]
    fn company_graph_is_unconnected() {
        let d = social_dataset_standalone();
        assert_eq!(d.company_graph.node_count(), 4);
        assert_eq!(d.company_graph.edge_count(), 0);
    }

    #[test]
    fn ids_disjoint_across_graphs() {
        let d = social_dataset_standalone();
        for n in d.company_graph.node_ids() {
            assert!(!d.social_graph.contains_node(n));
        }
    }

    #[test]
    fn orders_table_shape() {
        let d = social_dataset_standalone();
        assert_eq!(d.orders.columns(), &["custName", "prodCode"]);
        assert_eq!(d.orders.len(), 5);
    }

    #[test]
    fn graphs_validate() {
        let d = social_dataset_standalone();
        d.social_graph.validate().unwrap();
        d.company_graph.validate().unwrap();
    }
}
