//! A deterministic, scale-parameterized generator for the simplified
//! LDBC SNB schema of **Figure 3**.
//!
//! The paper evaluates its guided tour on the LDBC Social Network
//! Benchmark dataset, whose reference generator (Java/Hadoop) is not
//! available here. This module substitutes a seeded Rust generator that
//! produces the same *shape* of data over the simplified schema the
//! paper prints: `Person` (firstName, lastName, multi-valued employer),
//! bi-directional `knows` edges, `City`/`isLocatedIn`, `Tag`/
//! `hasInterest`, `Company`, and `Post`/`Comment` message trees with
//! `has_creator` and `reply_of` edges. Every feature the guided-tour
//! queries exercise — multi-valued properties, unemployed persons,
//! knows-cliques, reply chains, co-located interest groups — appears
//! with tunable frequency, so scaling experiments run the same engine
//! code paths as the real benchmark data.
//!
//! Determinism: all randomness comes from a [`SmallRng`] seeded from
//! [`SnbConfig::seed`]; identical configs produce identical graphs
//! (including identifiers, when drawn from a fresh [`IdGen`]).

use crate::names;
use gcore_ppg::{Attributes, GraphBuilder, IdGen, NodeId, PathPropertyGraph, PropertySet, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of one generated social network.
#[derive(Clone, Debug)]
pub struct SnbConfig {
    /// Number of Person nodes.
    pub persons: usize,
    /// RNG seed; same seed ⇒ same graph.
    pub seed: u64,
    /// Average number of knows *pairs* per person (each pair is two
    /// directed edges, per the Figure 4 caption).
    pub avg_friends: usize,
    /// Posts authored per person (expected value).
    pub posts_per_person: usize,
    /// Maximum reply-chain length under one post.
    pub max_comments_per_post: usize,
    /// Fraction of persons with no employer property, in percent.
    pub unemployed_pct: u32,
    /// Fraction of employed persons holding two jobs (multi-valued
    /// employer), in percent.
    pub two_jobs_pct: u32,
}

impl SnbConfig {
    /// A config with the defaults used throughout the benchmarks.
    pub fn scale(persons: usize) -> Self {
        SnbConfig {
            persons,
            seed: 0x5eed_c0de,
            avg_friends: 3,
            posts_per_person: 2,
            max_comments_per_post: 3,
            unemployed_pct: 15,
            two_jobs_pct: 10,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated network plus the handles benchmarks need.
pub struct SnbData {
    /// The generated graph.
    pub graph: PathPropertyGraph,
    /// All Person nodes, in generation order.
    pub persons: Vec<NodeId>,
    /// All City nodes.
    pub cities: Vec<NodeId>,
    /// All Tag nodes (`tags[0]` is Wagner).
    pub tags: Vec<NodeId>,
    /// All Company nodes in generation order (name order of
    /// [`names::COMPANIES`], cycled).
    pub companies: Vec<String>,
}

/// Generate a network against a shared identifier generator.
pub fn generate(cfg: &SnbConfig, idgen: &IdGen) -> SnbData {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new(idgen.clone());

    let n = cfg.persons.max(1);
    let n_cities = (n / 50).max(2).min(names::CITIES.len() * 4);
    let n_tags = (n / 20).max(4).min(names::TAGS.len() * 4);
    let n_companies = (n / 25).max(4).min(names::COMPANIES.len() * 4);

    let indexed = |pool: &[&str], i: usize| -> String {
        if i < pool.len() {
            pool[i].to_owned()
        } else {
            format!("{}-{}", pool[i % pool.len()], i / pool.len())
        }
    };

    // ---- reference data ---------------------------------------------
    let cities: Vec<NodeId> = (0..n_cities)
        .map(|i| b.node(Attributes::labeled("City").with_prop("name", indexed(names::CITIES, i))))
        .collect();
    let tags: Vec<NodeId> = (0..n_tags)
        .map(|i| b.node(Attributes::labeled("Tag").with_prop("name", indexed(names::TAGS, i))))
        .collect();
    let companies: Vec<String> = (0..n_companies)
        .map(|i| indexed(names::COMPANIES, i))
        .collect();

    // ---- persons -------------------------------------------------------
    let mut persons = Vec::with_capacity(n);
    for i in 0..n {
        let first = names::FIRST_NAMES[rng.gen_range(0..names::FIRST_NAMES.len())];
        let last = names::LAST_NAMES[rng.gen_range(0..names::LAST_NAMES.len())];
        let mut attrs = Attributes::labeled("Person")
            .with_prop("firstName", first)
            .with_prop("lastName", last)
            .with_prop("personId", i as i64);
        if rng.gen_range(0..100u32) >= cfg.unemployed_pct {
            let i1 = rng.gen_range(0..companies.len());
            let c1 = companies[i1].clone();
            if rng.gen_range(0..100u32) < cfg.two_jobs_pct {
                let mut c2 = companies[rng.gen_range(0..companies.len())].clone();
                if c2 == c1 {
                    c2 = companies[(i1 + 1) % companies.len()].clone();
                }
                attrs = attrs.with_prop_set(
                    "employer",
                    PropertySet::from_values([Value::str(c1), Value::str(c2)]),
                );
            } else {
                attrs = attrs.with_prop("employer", c1);
            }
        }
        persons.push(b.node(attrs));
    }

    // City and interest attachment. City choice is skewed (Zipf-ish) so
    // co-location — which the tour's WHERE clauses join on — is common.
    for &p in &persons {
        let city = cities[skewed_index(&mut rng, cities.len())];
        b.edge(p, city, Attributes::labeled("isLocatedIn"));
        let n_interests = rng.gen_range(1..=3);
        for _ in 0..n_interests {
            let tag = tags[skewed_index(&mut rng, tags.len())];
            b.edge(p, tag, Attributes::labeled("hasInterest"));
        }
    }

    // ---- knows edges ------------------------------------------------------
    // Ring + random chords: guarantees connectivity (so path queries have
    // answers at every scale) while keeping smallish diameter.
    let pair = |b: &mut GraphBuilder, x: usize, y: usize| {
        if x != y {
            b.edge_bidi(persons[x], persons[y], Attributes::labeled("knows"));
        }
    };
    if n > 1 {
        for i in 0..n {
            pair(&mut b, i, (i + 1) % n);
        }
        let extra_pairs = n * cfg.avg_friends.saturating_sub(1);
        for _ in 0..extra_pairs {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            pair(&mut b, x, y);
        }
    }

    // ---- message forest -----------------------------------------------------
    // Each post starts a reply chain alternating between the author and a
    // random acquaintance, which is exactly the shape `nr_messages`
    // aggregates over.
    for (i, &author) in persons.iter().enumerate() {
        let n_posts = rng.gen_range(0..=cfg.posts_per_person * 2);
        for _ in 0..n_posts {
            let post = b.node(Attributes::labeled("Post").with_prop("length", 40i64));
            b.edge(post, author, Attributes::labeled("has_creator"));
            let mut parent = post;
            let partner = persons[(i + 1 + rng.gen_range(0..n.max(2) - 1)) % n];
            let chain = rng.gen_range(0..=cfg.max_comments_per_post);
            for d in 0..chain {
                let who = if d % 2 == 0 { partner } else { author };
                let c = b.node(Attributes::labeled("Comment").with_prop("length", 10i64));
                b.edge(c, who, Attributes::labeled("has_creator"));
                b.edge(c, parent, Attributes::labeled("reply_of"));
                parent = c;
            }
        }
    }

    SnbData {
        graph: b.build(),
        persons,
        cities,
        tags,
        companies,
    }
}

/// Generate with a private identifier generator.
pub fn generate_standalone(cfg: &SnbConfig) -> SnbData {
    generate(cfg, &IdGen::new())
}

/// A skewed (≈ Zipf) index: low indexes are much more likely.
fn skewed_index(rng: &mut SmallRng, len: usize) -> usize {
    debug_assert!(len > 0);
    let u: f64 = rng.gen_range(0.0..1.0f64);
    let idx = (len as f64 * u * u) as usize;
    idx.min(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_ppg::Label;

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = generate_standalone(&SnbConfig::scale(200));
        let b = generate_standalone(&SnbConfig::scale(200));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_standalone(&SnbConfig::scale(200));
        let b = generate_standalone(&SnbConfig::scale(200).with_seed(42));
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn person_count_matches_config() {
        let d = generate_standalone(&SnbConfig::scale(150));
        assert_eq!(d.persons.len(), 150);
        assert_eq!(d.graph.nodes_with_label(Label::new("Person")).len(), 150);
    }

    #[test]
    fn knows_edges_come_in_mirrored_pairs() {
        let d = generate_standalone(&SnbConfig::scale(80));
        let g = &d.graph;
        let knows = g.edges_with_label(Label::new("knows"));
        assert!(!knows.is_empty());
        assert_eq!(knows.len() % 2, 0);
        for e in knows {
            let (s, t) = g.endpoints(e).unwrap();
            let mirrored = g.out_edges(t).iter().any(|&e2| {
                g.endpoints(e2) == Some((t, s)) && g.has_label(e2.into(), Label::new("knows"))
            });
            assert!(mirrored);
        }
    }

    #[test]
    fn knows_graph_is_connected() {
        let d = generate_standalone(&SnbConfig::scale(120));
        let g = &d.graph;
        // BFS over knows edges from person 0 must reach every person.
        let mut seen = vec![d.persons[0]];
        let mut queue = vec![d.persons[0]];
        while let Some(p) = queue.pop() {
            for &e in g.out_edges(p) {
                if !g.has_label(e.into(), Label::new("knows")) {
                    continue;
                }
                let (_, t) = g.endpoints(e).unwrap();
                if !seen.contains(&t) {
                    seen.push(t);
                    queue.push(t);
                }
            }
        }
        assert_eq!(seen.len(), d.persons.len());
    }

    #[test]
    fn some_persons_are_unemployed_and_some_hold_two_jobs() {
        let d = generate_standalone(&SnbConfig::scale(300));
        let g = &d.graph;
        let key = gcore_ppg::Key::new("employer");
        let mut none = 0;
        let mut multi = 0;
        for &p in &d.persons {
            match g.prop(p.into(), key).len() {
                0 => none += 1,
                2 => multi += 1,
                _ => {}
            }
        }
        assert!(none > 0, "expected unemployed persons");
        assert!(multi > 0, "expected multi-valued employers");
    }

    #[test]
    fn messages_form_reply_trees() {
        let d = generate_standalone(&SnbConfig::scale(60));
        let g = &d.graph;
        let comments = g.nodes_with_label(Label::new("Comment"));
        assert!(!comments.is_empty());
        for c in comments {
            let replies: Vec<_> = g
                .out_edges(c)
                .iter()
                .filter(|&&e| g.has_label(e.into(), Label::new("reply_of")))
                .collect();
            assert_eq!(replies.len(), 1, "each comment replies to one parent");
        }
        g.validate().unwrap();
    }

    #[test]
    fn scaling_grows_linearly() {
        let small = generate_standalone(&SnbConfig::scale(100));
        let large = generate_standalone(&SnbConfig::scale(400));
        let ratio = large.graph.node_count() as f64 / small.graph.node_count() as f64;
        assert!((2.5..6.0).contains(&ratio), "ratio {ratio} out of range");
    }
}
