//! # gcore-snb — LDBC SNB-style datasets for the G-CORE reproduction
//!
//! Three data sources, all deterministic:
//!
//! * [`figure2()`] — the paper's Figure 2 / Example 2.2 toy PPG with its
//!   literal identifiers (101–106, 201–207, 301);
//! * [`social_graph`] — the Figure 4 `social_graph` + `company_graph`
//!   instance every guided-tour query of §3 runs on;
//! * [`generator`] — a seeded, scale-parameterized generator for the
//!   simplified SNB schema of Figure 3, used by the scaling benchmarks.
//!
//! ```
//! use gcore_snb::{social_dataset_standalone, SnbConfig};
//!
//! let d = social_dataset_standalone();
//! assert_eq!(d.social_graph.nodes_with_label("Person".into()).len(), 5);
//!
//! let big = gcore_snb::generate_standalone(&SnbConfig::scale(1000));
//! assert_eq!(big.persons.len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure2;
pub mod generator;
pub mod names;
pub mod social_graph;

pub use figure2::{figure2, figure2_standalone};
pub use generator::{generate, generate_standalone, SnbConfig, SnbData};
pub use social_graph::{social_dataset, social_dataset_standalone, SocialDataset};
