//! The toy Path Property Graph of **Figure 2** / Example 2.2.
//!
//! The paper fixes the identifier sets and part of the assignments:
//!
//! * `N = {101, …, 106}`, `E = {201, …, 207}`, `P = {301}`;
//! * `ρ(201) = (102, 101)`, `ρ(207) = (105, 103)`;
//! * `δ(301) = [105, 207, 103, 202, 102]`;
//! * `λ(101) = {Tag}`, `λ(102) = {Person, Manager}`,
//!   `λ(201) = {hasInterest}`, `λ(301) = {toWagner}`;
//! * `σ(101, name) = {Wagner}`, `σ(205, since) = {1/12/2014}`,
//!   `σ(301, trust) = {0.95}`.
//!
//! The remaining assignments are fixed by the worked example of §A.2: two
//! `locatedIn` edges (from 105 and from 102) point at node 106, whose
//! `name` is `Houston`, and the path 301 must conform to
//! `(knows + knows⁻)*`, so edges 207 = (105,103) and 202 = (103,102) are
//! `knows` edges. The elided parts (node 104 and edges 203–206) are
//! reconstructed consistently and documented here.

use gcore_ppg::{Attributes, GraphBuilder, IdGen, NodeId, PathPropertyGraph};

/// Node identifiers of Figure 2, by role.
pub mod ids {
    /// The `:Tag {name: Wagner}` node.
    pub const TAG_WAGNER: u64 = 101;
    /// The `:Person :Manager` node (end of the stored path).
    pub const MANAGER: u64 = 102;
    /// A `:Person` node (middle of the stored path).
    pub const PERSON_MIDDLE: u64 = 103;
    /// A `:Person` node off the stored path.
    pub const PERSON_OTHER: u64 = 104;
    /// The `:Person` node that starts the stored path.
    pub const PERSON_START: u64 = 105;
    /// The `:Place {name: Houston}` node.
    pub const PLACE_HOUSTON: u64 = 106;
    /// The `:toWagner {trust: 0.95}` stored path.
    pub const PATH_TO_WAGNER: u64 = 301;
}

/// Build the Figure 2 graph with the paper's literal identifiers, drawing
/// nothing from `idgen` but reserving 101–301 in it.
pub fn figure2(idgen: &IdGen) -> PathPropertyGraph {
    let mut b = GraphBuilder::new(idgen.clone());

    let tag = b.node_with_id(
        ids::TAG_WAGNER,
        Attributes::labeled("Tag").with_prop("name", "Wagner"),
    );
    let manager = b.node_with_id(
        ids::MANAGER,
        Attributes::labeled("Person")
            .with_label("Manager")
            .with_prop("name", "Alice"),
    );
    let middle = b.node_with_id(
        ids::PERSON_MIDDLE,
        Attributes::labeled("Person").with_prop("name", "Celine"),
    );
    let other = b.node_with_id(
        ids::PERSON_OTHER,
        Attributes::labeled("Person").with_prop("name", "Dave"),
    );
    let start = b.node_with_id(
        ids::PERSON_START,
        Attributes::labeled("Person").with_prop("name", "Peter"),
    );
    let houston = b.node_with_id(
        ids::PLACE_HOUSTON,
        Attributes::labeled("Place").with_prop("name", "Houston"),
    );

    // ρ(201) = (102, 101), λ(201) = {hasInterest} — fixed by the paper.
    b.edge_with_id(201, manager, tag, Attributes::labeled("hasInterest"))
        .expect("endpoints exist");
    // ρ(202) = (103, 102) knows — required by δ(301) ∘ (knows+knows⁻)*.
    b.edge_with_id(202, middle, manager, Attributes::labeled("knows"))
        .expect("endpoints exist");
    // 203, 206: the two locatedIn edges of the §A.2 worked example
    // ({x→105, w→106} and {x→102, w→106}).
    b.edge_with_id(203, manager, houston, Attributes::labeled("locatedIn"))
        .expect("endpoints exist");
    b.edge_with_id(204, other, middle, Attributes::labeled("knows"))
        .expect("endpoints exist");
    // σ(205, since) = {1/12/2014} — fixed by the paper; the date literal
    // is kept verbatim as a string, exactly as printed.
    b.edge_with_id(
        205,
        other,
        start,
        Attributes::labeled("knows").with_prop("since", "1/12/2014"),
    )
    .expect("endpoints exist");
    b.edge_with_id(206, start, houston, Attributes::labeled("locatedIn"))
        .expect("endpoints exist");
    // ρ(207) = (105, 103) — fixed by the paper.
    b.edge_with_id(207, start, middle, Attributes::labeled("knows"))
        .expect("endpoints exist");

    // δ(301) = [105, 207, 103, 202, 102], λ(301) = {toWagner},
    // σ(301, trust) = {0.95}.
    b.path_with_id(
        ids::PATH_TO_WAGNER,
        vec![start, middle, manager],
        vec![gcore_ppg::EdgeId(207), gcore_ppg::EdgeId(202)],
        Attributes::labeled("toWagner").with_prop("trust", 0.95),
    )
    .expect("path is connected");

    b.build()
}

/// Convenience: the Figure 2 graph with a private generator.
pub fn figure2_standalone() -> PathPropertyGraph {
    figure2(&IdGen::new())
}

/// Node 105 (the start of the stored path), typed.
pub fn start_node() -> NodeId {
    NodeId(ids::PERSON_START)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_ppg::{EdgeId, Key, Label, NodeId, PathId};

    #[test]
    fn identifier_sets_match_example_2_2() {
        let g = figure2_standalone();
        assert_eq!(
            g.node_ids_sorted(),
            (101..=106).map(NodeId).collect::<Vec<_>>()
        );
        assert_eq!(
            g.edge_ids_sorted(),
            (201..=207).map(EdgeId).collect::<Vec<_>>()
        );
        assert_eq!(g.path_ids_sorted(), vec![PathId(301)]);
    }

    #[test]
    fn fixed_assignments_match_the_paper() {
        let g = figure2_standalone();
        assert_eq!(g.endpoints(EdgeId(201)), Some((NodeId(102), NodeId(101))));
        assert_eq!(g.endpoints(EdgeId(207)), Some((NodeId(105), NodeId(103))));
        assert!(g.has_label(NodeId(101).into(), Label::new("Tag")));
        assert!(g.has_label(NodeId(102).into(), Label::new("Person")));
        assert!(g.has_label(NodeId(102).into(), Label::new("Manager")));
        assert!(g.has_label(EdgeId(201).into(), Label::new("hasInterest")));
        assert!(g.has_label(PathId(301).into(), Label::new("toWagner")));
        assert_eq!(
            g.prop(NodeId(101).into(), Key::new("name")),
            "Wagner".into()
        );
        assert_eq!(
            g.prop(EdgeId(205).into(), Key::new("since")),
            "1/12/2014".into()
        );
        assert_eq!(g.prop(PathId(301).into(), Key::new("trust")), 0.95.into());
    }

    #[test]
    fn path_301_shape() {
        let g = figure2_standalone();
        let p = g.path(PathId(301)).unwrap();
        assert_eq!(p.shape.nodes(), &[NodeId(105), NodeId(103), NodeId(102)]);
        assert_eq!(p.shape.edges(), &[EdgeId(207), EdgeId(202)]);
        // nodes(301) and edges(301) as sets match Example 2.2.
        let mut ns: Vec<u64> = p.shape.nodes().iter().map(|n| n.raw()).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![102, 103, 105]);
        let mut es: Vec<u64> = p.shape.edges().iter().map(|e| e.raw()).collect();
        es.sort_unstable();
        assert_eq!(es, vec![202, 207]);
    }

    #[test]
    fn graph_is_well_formed() {
        figure2_standalone().validate().unwrap();
    }
}
